#include "common/hash.h"

#include <array>

#include "common/rng.h"

namespace dycuckoo {

uint32_t Crc32Update(uint32_t crc, const void* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

UniversalHash UniversalHash::FromSeed(uint64_t seed) {
  SplitMix64 rng(seed);
  uint64_t a = rng.Next() % (kUniversalPrime - 1) + 1;
  uint64_t b = rng.Next() % kUniversalPrime;
  return UniversalHash(a, b);
}

}  // namespace dycuckoo
