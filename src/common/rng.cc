#include "common/rng.h"

#include <cmath>

namespace dycuckoo {

double Xoroshiro128::NextGaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace dycuckoo
