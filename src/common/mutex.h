// Annotated lock types for Clang Thread Safety Analysis.
//
// std::mutex carries no capability attributes, so -Wthread-safety cannot
// check anything about code that uses it directly.  These thin wrappers
// add the attributes (and nothing else: storage and behavior are exactly
// the wrapped standard type), letting GUARDED_BY/REQUIRES declarations
// on the structures in src/service, src/gpusim, and src/baselines be
// compiler-verified.  See common/thread_annotations.h for the macro set
// and docs/analysis.md for the discipline.
//
// Condition variables: common::Mutex exposes BasicLockable lock()/
// unlock(), so std::condition_variable_any waits on it via
// std::unique_lock<common::Mutex>.  The analysis cannot see through
// std::unique_lock; functions that wait mark themselves
// NO_THREAD_SAFETY_ANALYSIS with a comment (grep for the macro to audit
// every exemption).

#ifndef DYCUCKOO_COMMON_MUTEX_H_
#define DYCUCKOO_COMMON_MUTEX_H_

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace dycuckoo {
namespace common {

/// Exclusive lock: std::mutex with capability attributes.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Reader/writer lock: std::shared_mutex with capability attributes.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock (the std::lock_guard shape, annotated).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex (writer side).
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared lock over a SharedMutex (reader side).
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace common
}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_MUTEX_H_
