// Hash function families used throughout the library.
//
// The paper (Section IV-A) uses a universal affine family
//   h_i(k) = ((a_i * k + b_i) mod p) mod |h_i|
// with per-subtable random (a_i, b_i) and a large prime p.  We provide that
// family verbatim (UniversalHash) plus a stronger seeded finalizer
// (MixHash, a splitmix64/murmur3-style avalanche) which the tables use by
// default: with power-of-two bucket counts the affine family's low bits are
// too regular, while a full-avalanche mixer keeps the conflict-free upsizing
// identity `x mod 2n ∈ {x mod n, x mod n + n}` intact (it only needs the
// 64-bit hash value to be fixed per key, not any algebraic structure).

#ifndef DYCUCKOO_COMMON_HASH_H_
#define DYCUCKOO_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

namespace dycuckoo {

/// Large Mersenne prime used by the universal family (2^61 - 1).
inline constexpr uint64_t kUniversalPrime = (uint64_t{1} << 61) - 1;

/// \brief The paper's universal affine family: ((a*k + b) mod p) mod range.
///
/// `a` must be in [1, p-1] and `b` in [0, p-1].
class UniversalHash {
 public:
  UniversalHash() : a_(1), b_(0) {}
  UniversalHash(uint64_t a, uint64_t b)
      : a_(a % kUniversalPrime), b_(b % kUniversalPrime) {
    if (a_ == 0) a_ = 1;
  }

  /// Creates a member of the family from a 64-bit seed.
  static UniversalHash FromSeed(uint64_t seed);

  /// Full 61-bit hash value (before range reduction).
  uint64_t Raw(uint64_t key) const {
    // (a*k + b) mod (2^61-1) without overflow via 128-bit arithmetic.
    unsigned __int128 prod = static_cast<unsigned __int128>(a_) * key + b_;
    uint64_t lo = static_cast<uint64_t>(prod & kUniversalPrime);
    uint64_t hi = static_cast<uint64_t>(prod >> 61);
    uint64_t res = lo + hi;
    if (res >= kUniversalPrime) res -= kUniversalPrime;
    return res;
  }

  /// Hash reduced to [0, range).
  uint64_t operator()(uint64_t key, uint64_t range) const {
    return Raw(key) % range;
  }

  uint64_t a() const { return a_; }
  uint64_t b() const { return b_; }

 private:
  uint64_t a_;
  uint64_t b_;
};

/// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// \brief Seeded full-avalanche hash; the default for bucket addressing.
///
/// Distinct seeds yield (empirically) independent hash functions, which is
/// what cuckoo hashing requires of its d subtable functions.
class MixHash {
 public:
  MixHash() : seed_(0) {}
  explicit MixHash(uint64_t seed) : seed_(seed) {}

  uint64_t Raw(uint64_t key) const { return Mix64(key ^ seed_); }

  /// Hash reduced to [0, range); range may be any positive value but the
  /// tables always pass powers of two and mask instead.
  uint64_t operator()(uint64_t key, uint64_t range) const {
    return Raw(key) % range;
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

/// \brief Incremental CRC-32 (ISO-HDLC polynomial 0xEDB88320, the zlib /
/// POSIX cksum variant) used as the snapshot integrity trailer.
///
/// Start with `crc = 0`, feed chunks in order:
///   uint32_t crc = 0;
///   crc = Crc32Update(crc, a, a_len);
///   crc = Crc32Update(crc, b, b_len);
/// Known-answer: Crc32Update(0, "123456789", 9) == 0xCBF43926.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t len);

/// 32-bit murmur3 finalizer, used where a cheap 32-bit mix suffices.
inline uint32_t Mix32(uint32_t x) {
  x ^= x >> 16;
  x *= 0x85ebca6bu;
  x ^= x >> 13;
  x *= 0xc2b2ae35u;
  x ^= x >> 16;
  return x;
}

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_HASH_H_
