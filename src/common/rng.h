// Deterministic pseudo-random generators.
//
// All randomized behaviour in the library (hash seeds, workload generation,
// the Theorem-1 sampling of insertion targets) flows from these generators so
// runs are reproducible given a seed.

#ifndef DYCUCKOO_COMMON_RNG_H_
#define DYCUCKOO_COMMON_RNG_H_

#include <cstdint>

namespace dycuckoo {

/// splitmix64: tiny, fast, passes BigCrush when used as a stream.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0x2545F4914F6CDD1DULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// xoroshiro128+: the workhorse generator for bulk workload synthesis.
class Xoroshiro128 {
 public:
  explicit Xoroshiro128(uint64_t seed = 1) {
    SplitMix64 sm(seed);
    s0_ = sm.Next();
    s1_ = sm.Next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t s0 = s0_;
    uint64_t s1 = s1_;
    uint64_t result = s0 + s1;
    s1 ^= s0;
    s0_ = Rotl(s0, 55) ^ s1 ^ (s1 << 14);
    s1_ = Rotl(s1, 36);
    return result;
  }

  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Standard normal via Box-Muller (used by the RAND dataset generator,
  /// which the paper draws from a normal distribution).
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s0_;
  uint64_t s1_;
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace dycuckoo

#endif  // DYCUCKOO_COMMON_RNG_H_
