#include "workload/dataset.h"

#include <algorithm>
#include <cctype>

#include "baselines/packed_kv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "workload/feistel.h"
#include "workload/zipf.h"

namespace dycuckoo {
namespace workload {

namespace {

const DatasetSpec kSpecs[] = {
    {DatasetId::kTwitter, "TW", 50876784, 44523684, 4, 0.0},
    {DatasetId::kReddit, "RE", 48104875, 41466682, 2, 0.0},
    {DatasetId::kLineitem, "LINE", 50000000, 45159880, 4, 0.0},
    {DatasetId::kCompany, "COM", 10000000, 4583941, 14, 0.9},
    {DatasetId::kRandom, "RAND", 100000000, 100000000, 1, 0.0},
};

}  // namespace

const DatasetSpec* AllDatasetSpecs(int* count) {
  *count = static_cast<int>(sizeof(kSpecs) / sizeof(kSpecs[0]));
  return kSpecs;
}

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const auto& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  DYCUCKOO_CHECK(false);
  return kSpecs[0];
}

Status ParseDatasetId(const std::string& text, DatasetId* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "tw" || lower == "twitter") {
    *out = DatasetId::kTwitter;
  } else if (lower == "re" || lower == "reddit") {
    *out = DatasetId::kReddit;
  } else if (lower == "line" || lower == "lineitem" || lower == "tpch") {
    *out = DatasetId::kLineitem;
  } else if (lower == "com" || lower == "company" || lower == "ali") {
    *out = DatasetId::kCompany;
  } else if (lower == "rand" || lower == "random") {
    *out = DatasetId::kRandom;
  } else {
    return Status::InvalidArgument("unknown dataset: " + text);
  }
  return Status::OK();
}

Status MakeDataset(DatasetId id, double scale, uint64_t seed, Dataset* out) {
  if (!(scale > 0.0 && scale <= 1.0)) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  const DatasetSpec& spec = GetDatasetSpec(id);
  const uint64_t unique =
      std::max<uint64_t>(1, static_cast<uint64_t>(spec.unique_keys * scale));
  const uint64_t total = std::max<uint64_t>(
      unique, static_cast<uint64_t>(spec.kv_pairs * scale));

  out->name = spec.name;
  out->unique_keys = unique;
  out->keys.clear();
  out->values.clear();
  out->keys.reserve(total);
  out->values.reserve(total);

  // Unique pseudo-random keys via a seeded bijection (no dedup memory).
  // The two top sentinel values are reserved by the tables and skipped.
  FeistelPermutation perm(seed);
  std::vector<uint32_t> uniques;
  uniques.reserve(unique);
  for (uint32_t counter = 0; uniques.size() < unique; ++counter) {
    uint32_t key = perm.Permute(counter);
    if (baselines::IsStorableKey(key)) uniques.push_back(key);
  }

  // Distribute the total-minus-unique extra occurrences, each key capped at
  // max_duplicates appearances.
  std::vector<uint16_t> occurrences(unique, 1);
  uint64_t extras = total - unique;
  Xoroshiro128 rng(seed ^ 0xDA7A5E7ULL);
  if (extras > 0) {
    if (spec.zipf_exponent > 0.0) {
      // Skewed duplication (hot keys), COM-style.
      ZipfSampler zipf(unique, spec.zipf_exponent);
      uint64_t placed = 0;
      uint64_t attempts = 0;
      const uint64_t max_attempts = extras * 32;
      while (placed < extras && attempts < max_attempts) {
        ++attempts;
        uint64_t rank = zipf.Sample(&rng);
        if (occurrences[rank] < spec.max_duplicates) {
          ++occurrences[rank];
          ++placed;
        }
      }
      // Cap-saturated tail: round-robin whatever could not be placed.
      for (uint64_t i = 0; placed < extras && i < unique; ++i) {
        while (occurrences[i] < spec.max_duplicates && placed < extras) {
          ++occurrences[i];
          ++placed;
        }
      }
    } else {
      // Uniform duplication: the first ceil(extras/(cap-1)) keys repeat.
      const int cap_extra = std::max(1, spec.max_duplicates - 1);
      uint64_t placed = 0;
      for (uint64_t i = 0; placed < extras && i < unique; ++i) {
        int give = static_cast<int>(
            std::min<uint64_t>(cap_extra, extras - placed));
        occurrences[i] = static_cast<uint16_t>(1 + give);
        placed += give;
      }
    }
  }

  for (uint64_t i = 0; i < unique; ++i) {
    for (int c = 0; c < occurrences[i]; ++c) {
      out->keys.push_back(uniques[i]);
      out->values.push_back(static_cast<uint32_t>(rng.Next()));
    }
  }

  // Arrival order: uniform shuffle (Fisher-Yates).
  for (uint64_t i = out->keys.size(); i > 1; --i) {
    uint64_t j = rng.NextBounded(i);
    std::swap(out->keys[i - 1], out->keys[j]);
    std::swap(out->values[i - 1], out->values[j]);
  }

  int max_dup = 1;
  for (uint64_t i = 0; i < unique; ++i) {
    max_dup = std::max<int>(max_dup, occurrences[i]);
  }
  out->max_duplicates = max_dup;
  return Status::OK();
}

}  // namespace workload
}  // namespace dycuckoo
