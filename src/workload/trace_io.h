// Binary trace export/import for dynamic workloads.
//
// A generated batch timeline can be frozen to a file and replayed later (or
// on another machine / against another build), removing generator drift
// from A/B comparisons.  Format: a magic/version header, then per batch the
// three op vectors with explicit lengths.

#ifndef DYCUCKOO_WORKLOAD_TRACE_IO_H_
#define DYCUCKOO_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "workload/dynamic_workload.h"

namespace dycuckoo {
namespace workload {

/// Serializes a batch timeline.
Status SaveTrace(const std::vector<DynamicBatch>& batches, std::ostream* os);

/// Restores a timeline written by SaveTrace.
Status LoadTrace(std::istream* is, std::vector<DynamicBatch>* out);

}  // namespace workload
}  // namespace dycuckoo

#endif  // DYCUCKOO_WORKLOAD_TRACE_IO_H_
