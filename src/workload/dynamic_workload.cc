#include "workload/dynamic_workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace dycuckoo {
namespace workload {

Status BuildDynamicWorkload(const Dataset& dataset,
                            const DynamicWorkloadOptions& options,
                            std::vector<DynamicBatch>* out) {
  if (options.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (options.delete_ratio < 0.0 || options.find_ratio < 0.0) {
    return Status::InvalidArgument("ratios must be >= 0");
  }
  out->clear();

  Xoroshiro128 rng(options.seed);
  // Pool of keys believed live; deletes/finds sample from it.  Duplicate
  // stream keys may leave duplicate pool entries, so a sampled delete can
  // miss — the paper's workloads have the same property.
  std::vector<uint32_t> live;
  live.reserve(dataset.size());

  const uint64_t n = dataset.size();
  const uint64_t num_batches = (n + options.batch_size - 1) /
                               options.batch_size;
  out->reserve(options.include_swapped_phase ? 2 * num_batches : num_batches);

  auto sample_finds = [&](uint64_t count, std::vector<uint32_t>* finds) {
    finds->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (live.empty()) {
        finds->push_back(static_cast<uint32_t>(rng.Next()) & 0x7fffffffu);
      } else {
        finds->push_back(live[rng.NextBounded(live.size())]);
      }
    }
  };

  // Phase 1: stream insertion order with augmented finds/deletes.
  for (uint64_t b = 0; b < num_batches; ++b) {
    DynamicBatch batch;
    const uint64_t begin = b * options.batch_size;
    const uint64_t end = std::min(n, begin + options.batch_size);
    batch.insert_keys.assign(dataset.keys.begin() + begin,
                             dataset.keys.begin() + end);
    batch.insert_values.assign(dataset.values.begin() + begin,
                               dataset.values.begin() + end);
    for (uint64_t i = begin; i < end; ++i) live.push_back(dataset.keys[i]);

    const uint64_t inserts = end - begin;
    sample_finds(static_cast<uint64_t>(inserts * options.find_ratio),
                 &batch.find_keys);

    const uint64_t deletes =
        static_cast<uint64_t>(inserts * options.delete_ratio);
    batch.delete_keys.reserve(deletes);
    for (uint64_t i = 0; i < deletes && !live.empty(); ++i) {
      uint64_t pick = rng.NextBounded(live.size());
      batch.delete_keys.push_back(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    out->push_back(std::move(batch));
  }

  // Phase 2: replay with INSERT and DELETE swapped — each original batch's
  // deletions come back as insertions and its insertions are deleted,
  // draining the table.
  if (options.include_swapped_phase) {
    const uint64_t phase1_end = out->size();
    for (uint64_t b = 0; b < phase1_end; ++b) {
      const DynamicBatch& src = (*out)[b];
      DynamicBatch batch;
      batch.insert_keys = src.delete_keys;
      batch.insert_values.reserve(batch.insert_keys.size());
      for (size_t i = 0; i < batch.insert_keys.size(); ++i) {
        batch.insert_values.push_back(static_cast<uint32_t>(rng.Next()));
      }
      sample_finds(src.find_keys.size(), &batch.find_keys);
      batch.delete_keys = src.insert_keys;
      out->push_back(std::move(batch));
    }
  }
  return Status::OK();
}

uint64_t TotalOps(const std::vector<DynamicBatch>& batches) {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.total_ops();
  return total;
}

}  // namespace workload
}  // namespace dycuckoo
