// 32-bit Feistel permutation: a seeded bijection on [0, 2^32) used to
// generate streams of *unique* pseudo-random keys without dedup memory.

#ifndef DYCUCKOO_WORKLOAD_FEISTEL_H_
#define DYCUCKOO_WORKLOAD_FEISTEL_H_

#include <cstdint>

#include "common/hash.h"

namespace dycuckoo {
namespace workload {

/// \brief Four-round balanced Feistel network over 16-bit halves.
///
/// Permute(i) != Permute(j) for i != j, so feeding a counter yields unique
/// scrambled keys.
class FeistelPermutation {
 public:
  explicit FeistelPermutation(uint64_t seed) {
    for (int r = 0; r < kRounds; ++r) {
      round_keys_[r] = Mix64(seed + 0x9E3779B97F4A7C15ULL * (r + 1));
    }
  }

  uint32_t Permute(uint32_t x) const {
    uint32_t left = x >> 16;
    uint32_t right = x & 0xffffu;
    for (int r = 0; r < kRounds; ++r) {
      uint32_t f =
          static_cast<uint32_t>(Mix64(right ^ round_keys_[r])) & 0xffffu;
      uint32_t new_left = right;
      right = left ^ f;
      left = new_left;
    }
    return (left << 16) | right;
  }

 private:
  static constexpr int kRounds = 4;
  uint64_t round_keys_[kRounds];
};

}  // namespace workload
}  // namespace dycuckoo

#endif  // DYCUCKOO_WORKLOAD_FEISTEL_H_
