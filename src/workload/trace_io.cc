#include "workload/trace_io.h"

#include <cstdint>
#include <istream>
#include <ostream>

namespace dycuckoo {
namespace workload {

namespace {

constexpr uint64_t kTraceMagic = 0xDC7CACE'01ULL;

void WriteU64(std::ostream* os, uint64_t v) {
  os->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU64(std::istream* is, uint64_t* v) {
  is->read(reinterpret_cast<char*>(v), sizeof(*v));
  return is->good();
}

void WriteVec(std::ostream* os, const std::vector<uint32_t>& v) {
  WriteU64(os, v.size());
  if (!v.empty()) {
    os->write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(uint32_t)));
  }
}

bool ReadVec(std::istream* is, std::vector<uint32_t>* v) {
  uint64_t n = 0;
  if (!ReadU64(is, &n)) return false;
  // Defensive bound: a corrupt length must not attempt a huge allocation.
  if (n > (uint64_t{1} << 34) / sizeof(uint32_t)) return false;
  v->resize(n);
  if (n > 0) {
    is->read(reinterpret_cast<char*>(v->data()),
             static_cast<std::streamsize>(n * sizeof(uint32_t)));
  }
  return is->good() || n == 0;
}

}  // namespace

Status SaveTrace(const std::vector<DynamicBatch>& batches, std::ostream* os) {
  WriteU64(os, kTraceMagic);
  WriteU64(os, batches.size());
  for (const auto& b : batches) {
    if (b.insert_keys.size() != b.insert_values.size()) {
      return Status::InvalidArgument("batch keys/values size mismatch");
    }
    WriteVec(os, b.insert_keys);
    WriteVec(os, b.insert_values);
    WriteVec(os, b.find_keys);
    WriteVec(os, b.delete_keys);
  }
  if (!os->good()) return Status::Internal("trace write failed");
  return Status::OK();
}

Status LoadTrace(std::istream* is, std::vector<DynamicBatch>* out) {
  out->clear();
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!ReadU64(is, &magic) || magic != kTraceMagic) {
    return Status::InvalidArgument("not a dycuckoo workload trace");
  }
  if (!ReadU64(is, &count)) {
    return Status::InvalidArgument("trace truncated");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DynamicBatch b;
    if (!ReadVec(is, &b.insert_keys) || !ReadVec(is, &b.insert_values) ||
        !ReadVec(is, &b.find_keys) || !ReadVec(is, &b.delete_keys)) {
      return Status::InvalidArgument("trace truncated");
    }
    if (b.insert_keys.size() != b.insert_values.size()) {
      return Status::InvalidArgument("trace corrupt: key/value mismatch");
    }
    out->push_back(std::move(b));
  }
  return Status::OK();
}

}  // namespace workload
}  // namespace dycuckoo
