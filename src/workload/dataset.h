// Dataset generators matched to the paper's Table II.
//
// The original datasets (Twitter crawl, Reddit comments, TPC-H lineitem,
// Alibaba Databank, normal-distribution RAND) are proprietary or impractical
// to ship; each generator reproduces the statistics the hash table actually
// sees — total KV count, unique-key count, and duplication skew — at a
// configurable scale.  See DESIGN.md section 1 for the substitution note.

#ifndef DYCUCKOO_WORKLOAD_DATASET_H_
#define DYCUCKOO_WORKLOAD_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dycuckoo {
namespace workload {

/// Identifier for the paper's five evaluation datasets.
enum class DatasetId {
  kTwitter,  // TW:   50,876,784 pairs, 44,523,684 unique, light dup (max 4)
  kReddit,   // RE:   48,104,875 pairs, 41,466,682 unique, dup <= 2
  kLineitem, // LINE: 50,000,000 pairs, 45,159,880 unique, light dup (max 4)
  kCompany,  // COM:  10,000,000 pairs,  4,583,941 unique, heavy skew (max 14)
  kRandom,   // RAND: 100,000,000 pairs, all unique
};

/// Full-scale statistics from the paper's Table II.
struct DatasetSpec {
  DatasetId id;
  const char* name;        // the paper's code name
  uint64_t kv_pairs;       // at scale 1.0
  uint64_t unique_keys;    // at scale 1.0
  int max_duplicates;      // per-key cap on occurrences
  double zipf_exponent;    // 0 = uniform duplication, >0 = skewed
};

/// The five specs in paper order.
const DatasetSpec* AllDatasetSpecs(int* count);

/// Spec lookup.
const DatasetSpec& GetDatasetSpec(DatasetId id);

/// A generated KV stream.
struct Dataset {
  std::string name;
  std::vector<uint32_t> keys;    // arrival order, duplicates interleaved
  std::vector<uint32_t> values;
  uint64_t unique_keys = 0;
  int max_duplicates = 1;

  uint64_t size() const { return keys.size(); }
};

/// Generates `spec` scaled by `scale` (pair and unique counts multiply by
/// it) with the given seed.  scale must be in (0, 1].
Status MakeDataset(DatasetId id, double scale, uint64_t seed, Dataset* out);

/// Parses "tw"/"re"/"line"/"com"/"rand" (case-insensitive).
Status ParseDatasetId(const std::string& text, DatasetId* out);

}  // namespace workload
}  // namespace dycuckoo

#endif  // DYCUCKOO_WORKLOAD_DATASET_H_
