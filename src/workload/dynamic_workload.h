// Dynamic workload driver (paper Section VI-A, "Dynamic Hashing
// Comparison"):
//
//   * the dataset stream is cut into batches of `batch_size` insertions;
//   * each batch is augmented with `find_ratio * batch_size` FINDs and
//     `delete_ratio * batch_size` DELETEs over previously inserted keys;
//   * after the stream is exhausted, the batches are replayed with INSERT
//     and DELETE roles swapped, draining the table (this drives the
//     downsizing half of the resizing policy).

#ifndef DYCUCKOO_WORKLOAD_DYNAMIC_WORKLOAD_H_
#define DYCUCKOO_WORKLOAD_DYNAMIC_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "workload/dataset.h"

namespace dycuckoo {
namespace workload {

/// One unit of the dynamic comparison: executed as three single-type
/// sub-batches in order (insert, find, delete), matching the paper's
/// batched execution assumption.
struct DynamicBatch {
  std::vector<uint32_t> insert_keys;
  std::vector<uint32_t> insert_values;
  std::vector<uint32_t> find_keys;
  std::vector<uint32_t> delete_keys;

  uint64_t total_ops() const {
    return insert_keys.size() + find_keys.size() + delete_keys.size();
  }
};

struct DynamicWorkloadOptions {
  /// Insertions per batch (paper default: 1e6 at full scale).
  uint64_t batch_size = 100000;

  /// r: deletions per insertion within a batch (paper Table III).
  double delete_ratio = 0.2;

  /// FINDs per insertion (the paper augments 1M finds per 1M-insert batch).
  double find_ratio = 1.0;

  /// Replay the stream with insert/delete swapped once exhausted.
  bool include_swapped_phase = true;

  uint64_t seed = 0xD2A317CULL;
};

/// Builds the full batch timeline for `dataset`.
Status BuildDynamicWorkload(const Dataset& dataset,
                            const DynamicWorkloadOptions& options,
                            std::vector<DynamicBatch>* out);

/// Sum of total_ops over all batches.
uint64_t TotalOps(const std::vector<DynamicBatch>& batches);

}  // namespace workload
}  // namespace dycuckoo

#endif  // DYCUCKOO_WORKLOAD_DYNAMIC_WORKLOAD_H_
