// Zipf-distributed rank sampler, used to shape duplicate-key skew (the COM
// dataset's celebrity-style hot keys).

#ifndef DYCUCKOO_WORKLOAD_ZIPF_H_
#define DYCUCKOO_WORKLOAD_ZIPF_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace dycuckoo {
namespace workload {

/// \brief Samples ranks in [0, n) with P(r) proportional to 1/(r+1)^s.
///
/// Precomputes the CDF; sampling is a binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double exponent) : cdf_(n) {
    DYCUCKOO_CHECK(n > 0);
    double acc = 0.0;
    for (uint64_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
      cdf_[r] = acc;
    }
    for (uint64_t r = 0; r < n; ++r) cdf_[r] /= acc;
  }

  uint64_t Sample(Xoroshiro128* rng) const {
    double u = rng->NextDouble();
    uint64_t lo = 0;
    uint64_t hi = cdf_.size() - 1;
    while (lo < hi) {
      uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace workload
}  // namespace dycuckoo

#endif  // DYCUCKOO_WORKLOAD_ZIPF_H_
