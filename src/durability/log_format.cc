#include "durability/log_format.h"

#include <cstring>

#include "common/hash.h"

namespace dycuckoo {
namespace durability {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace

void AppendFrame(std::string* out, uint64_t lsn, WalRecordType type,
                 const void* payload, size_t payload_len) {
  std::string body;
  body.reserve(kWalRecordPrefixBytes + payload_len);
  PutU64(&body, lsn);
  body.push_back(static_cast<char>(type));
  body.append(static_cast<const char*>(payload), payload_len);
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Crc32Update(0, body.data(), body.size()));
  out->append(body);
}

ParseResult ParseFrame(const char* data, size_t avail, ParsedRecord* rec) {
  if (avail < kWalFrameHeaderBytes) return ParseResult::kTruncated;
  uint32_t body_len = GetU32(data);
  uint32_t crc = GetU32(data + 4);
  if (body_len < kWalRecordPrefixBytes || body_len > kMaxWalRecordBytes) {
    return ParseResult::kCorrupt;
  }
  if (avail < kWalFrameHeaderBytes + body_len) return ParseResult::kTruncated;
  const char* body = data + kWalFrameHeaderBytes;
  if (Crc32Update(0, body, body_len) != crc) return ParseResult::kCorrupt;
  uint8_t type = static_cast<uint8_t>(body[8]);
  if (type < static_cast<uint8_t>(WalRecordType::kInsert) ||
      type > static_cast<uint8_t>(WalRecordType::kReshardCutover)) {
    return ParseResult::kCorrupt;
  }
  rec->lsn = GetU64(body);
  rec->type = static_cast<WalRecordType>(type);
  rec->payload = body + kWalRecordPrefixBytes;
  rec->payload_len = body_len - kWalRecordPrefixBytes;
  rec->frame_len = kWalFrameHeaderBytes + body_len;
  return ParseResult::kOk;
}

void AppendWalFileHeader(std::string* out, uint64_t key_width,
                         uint64_t value_width, uint64_t first_lsn) {
  std::string fields;
  fields.reserve(4 * 8);
  PutU64(&fields, kWalFormatVersion);
  PutU64(&fields, key_width);
  PutU64(&fields, value_width);
  PutU64(&fields, first_lsn);
  PutU64(out, kWalMagic);
  out->append(fields);
  PutU32(out, Crc32Update(0, fields.data(), fields.size()));
}

ParseResult ParseWalFileHeader(const char* data, size_t avail,
                               WalFileHeader* header) {
  if (avail < kWalFileHeaderBytes) return ParseResult::kTruncated;
  if (GetU64(data) != kWalMagic) return ParseResult::kCorrupt;
  const char* fields = data + 8;
  uint32_t crc = GetU32(data + 5 * 8);
  if (Crc32Update(0, fields, 4 * 8) != crc) return ParseResult::kCorrupt;
  header->version = GetU64(fields);
  header->key_width = GetU64(fields + 8);
  header->value_width = GetU64(fields + 16);
  header->first_lsn = GetU64(fields + 24);
  if (header->version != kWalFormatVersion) return ParseResult::kCorrupt;
  return ParseResult::kOk;
}

}  // namespace durability
}  // namespace dycuckoo
