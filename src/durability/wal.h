// Write-ahead log writer with group commit.
//
// The serving loop appends one record per acknowledged-to-be write
// (insert/erase), then calls Flush() once per micro-batch — the group
// commit.  Acks are released only after Flush() returns OK, so the durable
// log is always a superset of what clients were told succeeded.
//
// "Durable" here is an in-memory byte string (`durable_image()`), matching
// the repo's simulation philosophy: DeviceArena simulates cudaMalloc
// accounting, VirtualClock simulates elapsed time, and WalWriter simulates
// a log file plus fsync.  Everything interesting about durability — framing,
// torn tails, group-commit batching, truncation, crash recovery — is about
// the *bytes*, and keeping them in memory lets the chaos tests crash and
// recover thousands of times per second with zero filesystem flake.
//
// Crash semantics: injected I/O faults (gpusim::FaultInjector::OnIoFlush)
// and kill points can leave a prefix of a flush durable and mark the writer
// dead.  A dead writer persists nothing further and fails every call —
// the serving layer must stop acknowledging (see TableServer::crashed()).

#ifndef DYCUCKOO_DURABILITY_WAL_H_
#define DYCUCKOO_DURABILITY_WAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/log_format.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace durability {

template <typename Key, typename Value>
class WalWriter {
 public:
  /// A fresh log whose first record will carry `start_lsn` (1 for a new
  /// deployment; last_recovered_lsn + 1 when restarting after recovery).
  /// `scope` names this log's fault domain (a shard's segment scope, e.g.
  /// "shard-00003/"): it prefixes every kill-point name this writer
  /// crosses and is passed to OnIoFlush, so a chaos campaign can target
  /// one shard's log without touching the others.  Empty = unscoped
  /// (single-table deployments; fully backward compatible).
  explicit WalWriter(uint64_t start_lsn = 1, std::string scope = "")
      : scope_(std::move(scope)),
        next_lsn_(start_lsn),
        durable_lsn_(start_lsn - 1) {
    AppendWalFileHeader(&durable_, sizeof(Key), sizeof(Value), start_lsn);
  }

  // --- Appends (buffered; durable only after Flush) ------------------------

  uint64_t AppendInsert(Key key, Value value) {
    char payload[sizeof(Key) + sizeof(Value)];
    std::memcpy(payload, &key, sizeof(Key));
    std::memcpy(payload + sizeof(Key), &value, sizeof(Value));
    return AppendRecord(WalRecordType::kInsert, payload, sizeof(payload));
  }

  uint64_t AppendErase(Key key) {
    return AppendRecord(WalRecordType::kErase, &key, sizeof(Key));
  }

  uint64_t AppendResizeBarrier(uint64_t capacity_slots) {
    return AppendRecord(WalRecordType::kResizeBarrier, &capacity_slots,
                        sizeof(capacity_slots));
  }

  uint64_t AppendCheckpointMark(uint64_t checkpoint_lsn) {
    return AppendRecord(WalRecordType::kCheckpointMark, &checkpoint_lsn,
                        sizeof(checkpoint_lsn));
  }

  uint64_t AppendReshardCutover(uint64_t generation, uint32_t chunk,
                                uint32_t shards_from, uint32_t shards_to) {
    char payload[kReshardCutoverPayloadBytes];
    std::memcpy(payload, &generation, 8);
    std::memcpy(payload + 8, &chunk, 4);
    std::memcpy(payload + 12, &shards_from, 4);
    std::memcpy(payload + 16, &shards_to, 4);
    return AppendRecord(WalRecordType::kReshardCutover, payload,
                        sizeof(payload));
  }

  // --- Group commit --------------------------------------------------------

  /// Makes every buffered record durable, in order.  One injected-fault
  /// consultation per call.  On a clean injected failure the buffer is
  /// retained and the next Flush() retries; on a crash-style fault a prefix
  /// (possibly torn or bit-flipped) is persisted and the writer goes dead.
  Status Flush() {
    if (dead_) return CrashedStatus();
    if (pending_.empty()) return Status::OK();
    auto* injector = gpusim::FaultInjector::Active();
    if (injector && injector->OnKillPoint(ScopedName("wal.commit.before"))) {
      dead_ = true;
      return CrashedStatus();
    }
    gpusim::IoWriteFault fault = injector
                                     ? injector->OnIoFlush(scope_.c_str())
                                     : gpusim::IoWriteFault::kNone;
    switch (fault) {
      case gpusim::IoWriteFault::kFailCleanly:
        ++flush_failures_;
        return Status::Internal(
            "wal: group commit flush failed (injected); " +
            std::to_string(pending_.size()) + " records retained for retry");
      case gpusim::IoWriteFault::kShortWrite: {
        // A prefix of the batch reaches the log, cut at a record boundary.
        PersistPrefix(injector->NextDraw(/*stream=*/5) % pending_.size());
        dead_ = true;
        return CrashedStatus();
      }
      case gpusim::IoWriteFault::kTornWrite: {
        size_t keep = injector->NextDraw(/*stream=*/5) % pending_.size();
        PersistPrefix(keep);
        const std::string& torn = pending_[keep];
        size_t cut = 1 + injector->NextDraw(/*stream=*/6) % (torn.size() - 1);
        durable_.append(torn.data(), cut);
        dead_ = true;
        return CrashedStatus();
      }
      case gpusim::IoWriteFault::kBitFlip: {
        // The full batch reaches the log, but one bit of the final record
        // is corrupted in flight; the process dies before acking, so the
        // damage is confined to never-acknowledged records at the tail.
        size_t last_start = durable_.size();
        for (size_t i = 0; i + 1 < pending_.size(); ++i) {
          last_start += pending_[i].size();
        }
        PersistPrefix(pending_.size());
        uint64_t bit = injector->NextDraw(/*stream=*/7) %
                       ((durable_.size() - last_start) * 8);
        durable_[last_start + bit / 8] ^= static_cast<char>(1u << (bit % 8));
        dead_ = true;
        return CrashedStatus();
      }
      case gpusim::IoWriteFault::kNone:
        break;
    }
    if (injector && injector->OnKillPoint(ScopedName("wal.commit.mid"))) {
      PersistPrefix((pending_.size() + 1) / 2);
      dead_ = true;
      return CrashedStatus();
    }
    size_t records = pending_.size();
    size_t bytes = PersistPrefix(records);
    pending_.clear();
    ++flushes_;
    records_flushed_ += records;
    bytes_flushed_ += bytes;
    if (injector && injector->OnKillPoint(ScopedName("wal.commit.after"))) {
      // Everything is durable but no ack will ever be released: recovery
      // replays these records, the client retries — idempotent upserts.
      dead_ = true;
      return CrashedStatus();
    }
    return Status::OK();
  }

  /// Drops whole records with lsn <= `checkpoint_lsn` from the head and
  /// advances the file header's first_lsn.  Atomic (modelled as a
  /// write-temp-then-rename); the kill point fires only after the rename.
  Status TruncateHead(uint64_t checkpoint_lsn) {
    if (dead_) return CrashedStatus();
    WalFileHeader header;
    if (ParseWalFileHeader(durable_.data(), durable_.size(), &header) !=
        ParseResult::kOk) {
      return Status::DataLoss("wal: own header unreadable during truncation");
    }
    size_t offset = kWalFileHeaderBytes;
    uint64_t new_first = header.first_lsn;
    while (offset < durable_.size()) {
      ParsedRecord rec;
      if (ParseFrame(durable_.data() + offset, durable_.size() - offset,
                     &rec) != ParseResult::kOk) {
        break;
      }
      if (rec.lsn > checkpoint_lsn) break;
      offset += rec.frame_len;
      new_first = rec.lsn + 1;
    }
    std::string rebuilt;
    rebuilt.reserve(kWalFileHeaderBytes + (durable_.size() - offset));
    AppendWalFileHeader(&rebuilt, sizeof(Key), sizeof(Value), new_first);
    rebuilt.append(durable_, offset, std::string::npos);
    durable_ = std::move(rebuilt);
    ++truncations_;
    auto* injector = gpusim::FaultInjector::Active();
    if (injector && injector->OnKillPoint(ScopedName("wal.truncate.after"))) {
      dead_ = true;
      return CrashedStatus();
    }
    return Status::OK();
  }

  // --- Introspection -------------------------------------------------------

  /// True once a crash-style fault fired; the writer persists nothing more.
  bool dead() const { return dead_; }

  /// This log's fault-domain scope ("" when unscoped).
  const std::string& scope() const { return scope_; }

  /// The log bytes a crash would leave behind.  Feed to Recover().
  const std::string& durable_image() const { return durable_; }

  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t durable_lsn() const { return durable_lsn_; }
  size_t pending_records() const { return pending_.size(); }
  uint64_t durable_bytes() const { return durable_.size(); }
  uint64_t flushes() const { return flushes_; }
  uint64_t flush_failures() const { return flush_failures_; }
  uint64_t records_flushed() const { return records_flushed_; }
  uint64_t bytes_flushed() const { return bytes_flushed_; }
  uint64_t truncations() const { return truncations_; }

 private:
  static Status CrashedStatus() {
    return Status::Unavailable("wal: writer dead after simulated crash");
  }

  /// Kill-point name with the fault-domain scope prefixed ("shard-00003/
  /// wal.commit.mid").  Substring filters keep working unscoped — the
  /// unprefixed name is a suffix of the scoped one.
  const char* ScopedName(const char* name) {
    if (scope_.empty()) return name;
    scoped_name_ = scope_;
    scoped_name_ += name;
    return scoped_name_.c_str();
  }

  uint64_t AppendRecord(WalRecordType type, const void* payload, size_t len) {
    uint64_t lsn = next_lsn_++;
    std::string frame;
    AppendFrame(&frame, lsn, type, payload, len);
    pending_.push_back(std::move(frame));
    return lsn;
  }

  /// Moves the first `count` pending records into the durable image.
  /// Returns the bytes appended.  Does not clear `pending_` (crash paths
  /// leave it as the abandoned in-flight state).
  size_t PersistPrefix(size_t count) {
    size_t bytes = 0;
    for (size_t i = 0; i < count; ++i) {
      durable_ += pending_[i];
      bytes += pending_[i].size();
      ++durable_lsn_;
    }
    return bytes;
  }

  std::string scope_;
  std::string scoped_name_;  // scratch for ScopedName (avoids reallocating)
  std::string durable_;
  std::vector<std::string> pending_;  // framed records awaiting group commit
  uint64_t next_lsn_;
  uint64_t durable_lsn_;
  bool dead_ = false;
  uint64_t flushes_ = 0;
  uint64_t flush_failures_ = 0;
  uint64_t records_flushed_ = 0;
  uint64_t bytes_flushed_ = 0;
  uint64_t truncations_ = 0;
};

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_WAL_H_
