// Incremental checkpoint store: LSN-stamped DynamicTable snapshots.
//
// The store is an append-only sequence of entries, each wrapping one
// `DynamicTable::Save()` v2 snapshot with the LSN it covers (see
// log_format.h for the byte layout).  A checkpoint at LSN C makes every
// WAL record with lsn <= C redundant — but the WAL is only truncated to
// the *previous* checkpoint's LSN, so recovery survives a torn or
// bit-flipped newest entry by falling back one checkpoint and replaying
// a longer WAL suffix.
//
// Like WalWriter, "durable" is an in-memory image; entries are written in
// chunks with kill points between them so chaos tests can crash the
// process with a half-written checkpoint on disk.

#ifndef DYCUCKOO_DURABILITY_CHECKPOINT_H_
#define DYCUCKOO_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dycuckoo {
namespace durability {

/// One entry located inside a checkpoint image (views offsets, not bytes).
struct CheckpointEntryView {
  uint64_t checkpoint_lsn = 0;
  size_t entry_offset = 0;    // where the entry's magic starts
  size_t payload_offset = 0;  // where the snapshot bytes start
  size_t payload_len = 0;
  bool valid = false;  // frame complete and CRC intact
};

class CheckpointStore {
 public:
  /// An unscoped store (single-table deployments), or one scoped to a
  /// fault domain: `scope` (e.g. "shard-00003/") prefixes every kill-point
  /// name the store crosses and is passed to OnIoFlush, so chaos campaigns
  /// can target one shard's checkpoint stream.
  explicit CheckpointStore(std::string scope = "")
      : scope_(std::move(scope)) {}

  /// Appends one entry wrapping `snapshot`, in chunks, consulting the
  /// active FaultInjector for I/O faults and the kill points ckpt.begin /
  /// ckpt.mid / ckpt.entry_end (scope-prefixed when scoped).  On a clean
  /// injected failure nothing is persisted and the caller may retry; on a
  /// crash-style fault a partial or corrupted entry is persisted and the
  /// store goes dead.
  Status AppendEntry(uint64_t checkpoint_lsn, const std::string& snapshot);

  /// Keeps the newest `keep` valid entries (and any newer invalid bytes);
  /// drops everything older.  Atomic, like WAL head truncation.
  Status PruneToLast(int keep);

  /// Walks `image` front to back, returning every entry found.  A torn or
  /// corrupt entry is returned with valid=false; scanning stops at the
  /// first byte that is not an entry magic (nothing valid can follow in an
  /// append-only store).
  static std::vector<CheckpointEntryView> Scan(const std::string& image);

  bool dead() const { return dead_; }
  const std::string& durable_image() const { return durable_; }
  const std::string& scope() const { return scope_; }
  uint64_t entries_written() const { return entries_written_; }
  uint64_t append_failures() const { return append_failures_; }
  uint64_t prunes() const { return prunes_; }

 private:
  /// Scope-prefixed kill-point name (see WalWriter::ScopedName).
  const char* ScopedName(const char* name);

  std::string scope_;
  std::string scoped_name_;  // scratch buffer for ScopedName
  std::string durable_;
  bool dead_ = false;
  uint64_t entries_written_ = 0;
  uint64_t append_failures_ = 0;
  uint64_t prunes_ = 0;
};

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_CHECKPOINT_H_
