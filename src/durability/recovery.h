// Point-in-time crash recovery: newest valid checkpoint + WAL replay.
//
// Recover() rebuilds the table a crashed server would have acknowledged:
//
//   1. scan the checkpoint stream for the newest entry whose frame and CRC
//      are intact (falling back to older entries, then to an empty table);
//   2. validate the WAL header and replay the suffix of records with
//      lsn > checkpoint_lsn, in LSN order, stopping at the last intact
//      record (inserts are upserts and erases are idempotent, so replaying
//      a record whose effect the checkpoint already contains is harmless);
//   3. distinguish a *torn tail* (the log simply stops mid-record — the
//      expected shape after a crash during a group commit; the partial
//      record was never acknowledged, so it is counted and discarded) from
//      *mid-log corruption* (an intact record follows the damage, meaning
//      acknowledged records were lost — reported as DataLoss, never
//      silently skipped).
//
// The returned RecoveryReport is deterministic: two recoveries of the same
// byte images produce identical reports (compare with Digest()).

#ifndef DYCUCKOO_DURABILITY_RECOVERY_H_
#define DYCUCKOO_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"
#include "durability/checkpoint.h"
#include "durability/log_format.h"
#include "dycuckoo/dynamic_table.h"

namespace dycuckoo {
namespace durability {

/// Identity of the log a recovery is reading: which shard's WAL segment
/// this is.  A single-table deployment can leave it defaulted; a sharded
/// one passes each shard's id and segment name so two shards whose logs
/// happen to hold identical bytes still produce distinguishable reports.
struct RecoverySource {
  uint64_t shard_id = 0;
  std::string segment;  // WAL segment name, e.g. "wal-00003-of-00016.seg"
};

/// One kReshardCutover record replayed from a segment.  Recovery collects
/// these so the sharded layer can promote migration-journal chunk states:
/// a cutover record durable in the chunk's TARGET segment proves the copy
/// finished (the copy is flushed before the cutover record is appended).
struct ReshardCutoverSeen {
  uint64_t generation = 0;
  uint32_t chunk = 0;
  uint32_t shards_from = 0;
  uint32_t shards_to = 0;
};

/// What a recovery did, for operators and for determinism checks.
/// Marked [[nodiscard]]: a dropped report hides replay damage.
struct [[nodiscard]] RecoveryReport {
  uint64_t shard_id = 0;            // identity of the log summarized here
  std::string segment;              // WAL segment name ("" = unsharded)
  uint64_t checkpoint_lsn = 0;      // 0 = no usable checkpoint (empty start)
  uint64_t checkpoints_scanned = 0;
  uint64_t checkpoints_corrupt = 0;
  uint64_t wal_records_scanned = 0;
  uint64_t wal_records_applied = 0;  // state-mutating replays (insert/erase)
  uint64_t wal_records_skipped = 0;  // lsn <= checkpoint_lsn (already covered)
  uint64_t last_lsn = 0;             // highest intact LSN seen (0 = none)
  uint64_t torn_tail_bytes = 0;      // bytes discarded at the torn tail
  std::vector<ReshardCutoverSeen> reshard_cutovers;  // replay order

  /// FNV-1a over every field, the source identity included; equal digests
  /// <=> identical recoveries *of the same log*.  Two shards replaying
  /// byte-identical segments still differ, because the digest covers
  /// shard_id and segment.
  uint64_t Digest() const {
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    mix(shard_id);
    mix(segment.size());
    for (char c : segment) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(checkpoint_lsn);
    mix(checkpoints_scanned);
    mix(checkpoints_corrupt);
    mix(wal_records_scanned);
    mix(wal_records_applied);
    mix(wal_records_skipped);
    mix(last_lsn);
    mix(torn_tail_bytes);
    mix(reshard_cutovers.size());
    for (const ReshardCutoverSeen& c : reshard_cutovers) {
      mix(c.generation);
      mix(c.chunk);
      mix(c.shards_from);
      mix(c.shards_to);
    }
    return h;
  }

  /// Operator-facing one-report summary (chaos artifacts, heal logs).
  std::string ToString() const {
    std::ostringstream os;
    os << "RecoveryReport{shard=" << shard_id << " segment="
       << (segment.empty() ? "<unsharded>" : segment)
       << " checkpoint_lsn=" << checkpoint_lsn
       << " checkpoints_scanned=" << checkpoints_scanned
       << " checkpoints_corrupt=" << checkpoints_corrupt
       << " wal_scanned=" << wal_records_scanned
       << " wal_applied=" << wal_records_applied
       << " wal_skipped=" << wal_records_skipped
       << " last_lsn=" << last_lsn
       << " torn_tail_bytes=" << torn_tail_bytes
       << " reshard_cutovers=" << reshard_cutovers.size()
       << " digest=" << Digest() << "}";
    return os.str();
  }
};

namespace internal {

inline std::string DrainStream(std::istream& is) {
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

/// True if any offset in [from, image.size()) parses as an intact record —
/// the signature of mid-log corruption rather than a torn tail.
inline bool HasIntactRecordAfter(const std::string& image, size_t from) {
  if (image.size() < kWalFrameHeaderBytes + kWalRecordPrefixBytes) {
    return false;
  }
  size_t last = image.size() - kWalFrameHeaderBytes - kWalRecordPrefixBytes;
  for (size_t off = from; off <= last; ++off) {
    ParsedRecord rec;
    if (ParseFrame(image.data() + off, image.size() - off, &rec) ==
        ParseResult::kOk) {
      return true;
    }
  }
  return false;
}

}  // namespace internal

/// Rebuilds a table from a checkpoint stream and a WAL stream (either may
/// be empty).  On success `*out` holds the recovered table and `*report`
/// describes the recovery.  Returns DataLoss when acknowledged bytes are
/// provably gone (WAL truncated past the checkpoint, mid-log corruption,
/// unreadable WAL header); a torn tail is NOT an error.
template <typename Key, typename Value>
Status Recover(std::istream& checkpoint_stream, std::istream& wal_stream,
               const DyCuckooOptions& options,
               std::unique_ptr<DynamicTable<Key, Value>>* out,
               RecoveryReport* report, const RecoverySource& source = {}) {
  *report = RecoveryReport{};
  report->shard_id = source.shard_id;
  report->segment = source.segment;
  out->reset();
  const std::string ckpt_image = internal::DrainStream(checkpoint_stream);
  const std::string wal_image = internal::DrainStream(wal_stream);

  // --- 1. newest valid checkpoint -----------------------------------------
  std::unique_ptr<DynamicTable<Key, Value>> table;
  uint64_t checkpoint_lsn = 0;
  std::vector<CheckpointEntryView> entries = CheckpointStore::Scan(ckpt_image);
  report->checkpoints_scanned = entries.size();
  for (auto it = entries.rbegin(); it != entries.rend() && !table; ++it) {
    if (!it->valid) {
      ++report->checkpoints_corrupt;
      continue;
    }
    std::istringstream snap(
        ckpt_image.substr(it->payload_offset, it->payload_len));
    Status st = DynamicTable<Key, Value>::Load(snap, options, &table);
    if (st.ok()) {
      checkpoint_lsn = it->checkpoint_lsn;
    } else {
      // CRC-valid wrapper around an unloadable snapshot: count it and fall
      // back to the previous checkpoint rather than failing recovery.
      ++report->checkpoints_corrupt;
      table.reset();
    }
  }
  if (!table) {
    Status created = DynamicTable<Key, Value>::Create(options, &table);
    if (!created.ok()) return created;
  }
  report->checkpoint_lsn = checkpoint_lsn;

  // --- 2. WAL replay ------------------------------------------------------
  if (!wal_image.empty()) {
    WalFileHeader header;
    if (ParseWalFileHeader(wal_image.data(), wal_image.size(), &header) !=
        ParseResult::kOk) {
      return Status::DataLoss("recovery: WAL file header corrupt");
    }
    if (header.key_width != sizeof(Key) ||
        header.value_width != sizeof(Value)) {
      return Status::InvalidArgument(
          "recovery: WAL key/value widths do not match this table type");
    }
    if (checkpoint_lsn + 1 < header.first_lsn) {
      return Status::DataLoss(
          "recovery: WAL truncated past the newest usable checkpoint "
          "(need lsn " + std::to_string(checkpoint_lsn + 1) +
          ", log starts at " + std::to_string(header.first_lsn) + ")");
    }
    size_t offset = kWalFileHeaderBytes;
    uint64_t expected_lsn = header.first_lsn;
    while (offset < wal_image.size()) {
      ParsedRecord rec;
      ParseResult pr = ParseFrame(wal_image.data() + offset,
                                  wal_image.size() - offset, &rec);
      if (pr != ParseResult::kOk) {
        if (internal::HasIntactRecordAfter(wal_image, offset + 1)) {
          return Status::DataLoss(
              "recovery: corrupt WAL record at offset " +
              std::to_string(offset) + " with intact records after it");
        }
        report->torn_tail_bytes = wal_image.size() - offset;
        break;
      }
      if (rec.lsn != expected_lsn) {
        return Status::DataLoss(
            "recovery: LSN gap in WAL (expected " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(rec.lsn) + ")");
      }
      expected_lsn = rec.lsn + 1;
      ++report->wal_records_scanned;
      report->last_lsn = rec.lsn;
      if (rec.lsn <= checkpoint_lsn) {
        ++report->wal_records_skipped;
        offset += rec.frame_len;
        continue;
      }
      switch (rec.type) {
        case WalRecordType::kInsert: {
          if (rec.payload_len != sizeof(Key) + sizeof(Value)) {
            return Status::DataLoss("recovery: malformed insert record");
          }
          Key k;
          Value v;
          std::memcpy(&k, rec.payload, sizeof(Key));
          std::memcpy(&v, rec.payload + sizeof(Key), sizeof(Value));
          Status st = table->Insert(k, v);
          if (!st.ok()) {
            return Status::Internal("recovery: replay of insert at lsn " +
                                    std::to_string(rec.lsn) +
                                    " failed: " + st.ToString());
          }
          ++report->wal_records_applied;
          break;
        }
        case WalRecordType::kErase: {
          if (rec.payload_len != sizeof(Key)) {
            return Status::DataLoss("recovery: malformed erase record");
          }
          Key k;
          std::memcpy(&k, rec.payload, sizeof(Key));
          table->Erase(k);  // idempotent; absent key is fine
          ++report->wal_records_applied;
          break;
        }
        case WalRecordType::kReshardCutover: {
          if (rec.payload_len != kReshardCutoverPayloadBytes) {
            return Status::DataLoss("recovery: malformed cutover record");
          }
          ReshardCutoverSeen seen;
          std::memcpy(&seen.generation, rec.payload, 8);
          std::memcpy(&seen.chunk, rec.payload + 8, 4);
          std::memcpy(&seen.shards_from, rec.payload + 12, 4);
          std::memcpy(&seen.shards_to, rec.payload + 16, 4);
          report->reshard_cutovers.push_back(seen);
          break;  // a marker: carries migration evidence, no table state
        }
        case WalRecordType::kResizeBarrier:
        case WalRecordType::kCheckpointMark:
          break;  // markers carry no table state
      }
      offset += rec.frame_len;
    }
  }

  *out = std::move(table);
  return Status::OK();
}

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_RECOVERY_H_
