// On-the-wire format of the write-ahead log and the checkpoint store.
//
// A WAL is a 44-byte file header followed by a sequence of CRC32-framed,
// LSN-stamped records:
//
//   file header:  [u64 magic][u64 version][u64 key_width][u64 value_width]
//                 [u64 first_lsn][u32 crc(version..first_lsn)]
//   record frame: [u32 body_len][u32 crc(body)] body
//   record body:  [u64 lsn][u8 type][payload]
//
// `first_lsn` is the LSN of the first record that may appear in the file;
// head truncation (after a checkpoint) drops whole records from the front
// and advances it.  LSNs are assigned densely (+1 per record), so recovery
// can detect a gap — a truncation that outran its checkpoint — as DataLoss
// rather than silently replaying from the wrong point.
//
// Record types:
//   kInsert         payload = key bytes + value bytes (an upsert)
//   kErase          payload = key bytes
//   kResizeBarrier  payload = u64 capacity_slots (informational marker)
//   kCheckpointMark payload = u64 checkpoint_lsn (a checkpoint covering
//                   every record with lsn <= checkpoint_lsn is durable)
//   kReshardCutover payload = [u64 generation][u32 chunk][u32 shards_from]
//                   [u32 shards_to].  Written by service::Resharder on the
//                   source and then the target segment once a migration
//                   chunk's copy is durable; a cutover record in the
//                   TARGET segment is proof the chunk's data is fully on
//                   the target, so recovery resumes the migration instead
//                   of rolling it back.  Duplicates are harmless markers.
//
// The checkpoint store is a sequence of self-delimiting entries, each
// wrapping one DynamicTable v2 snapshot:
//
//   entry: [u64 magic][u64 checkpoint_lsn][u64 payload_len]
//          [payload bytes][u32 crc(lsn, len, payload)]
//
// Recovery scans for the newest entry whose frame and CRC are intact and
// falls back to the previous one if the newest is torn or corrupt — which
// is why the WAL is only ever truncated up to the *previous* checkpoint's
// LSN (see DurabilityManager).
//
// All multi-byte integers are little-endian host order: the WAL never
// leaves the machine that wrote it (matching the simulated-device setting),
// and the v2 snapshot format it wraps makes the same choice.

#ifndef DYCUCKOO_DURABILITY_LOG_FORMAT_H_
#define DYCUCKOO_DURABILITY_LOG_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dycuckoo {
namespace durability {

inline constexpr uint64_t kWalMagic = 0xD1C0CC00'4A11F11EULL;
inline constexpr uint64_t kWalFormatVersion = 1;
inline constexpr uint64_t kCheckpointEntryMagic = 0xD1C0CC00'C4EC9014ULL;

/// Frame overhead: u32 body_len + u32 crc.
inline constexpr size_t kWalFrameHeaderBytes = 8;
/// Body prefix: u64 lsn + u8 type.
inline constexpr size_t kWalRecordPrefixBytes = 9;
/// File header: magic, version, key width, value width, first_lsn, crc.
inline constexpr size_t kWalFileHeaderBytes = 5 * 8 + 4;
/// Checkpoint entry header: magic, checkpoint_lsn, payload_len.
inline constexpr size_t kCheckpointEntryHeaderBytes = 3 * 8;
/// Sanity bound on one record body; anything larger is corruption.
inline constexpr uint32_t kMaxWalRecordBytes = 1u << 20;

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kErase = 2,
  kResizeBarrier = 3,
  kCheckpointMark = 4,
  kReshardCutover = 5,
};

/// Fixed payload size of a kReshardCutover record:
/// [u64 generation][u32 chunk][u32 shards_from][u32 shards_to].
inline constexpr size_t kReshardCutoverPayloadBytes = 8 + 3 * 4;

/// Names of every crash point the durability layer crosses, in the order a
/// fault-free run first reaches them.  Chaos tests iterate this list so a
/// newly added kill point is exercised without editing the test.
inline constexpr const char* kKillPointNames[] = {
    "wal.commit.before",   // group commit about to write; nothing durable
    "wal.commit.mid",      // a prefix of the batch's records is durable
    "wal.commit.after",    // all records durable, no ack released yet
    "ckpt.begin",          // checkpoint entry header about to be written
    "ckpt.mid",            // checkpoint payload partially written
    "ckpt.entry_end",      // checkpoint entry fully durable, not yet marked
    "ckpt.mark",           // checkpoint-mark record durable, WAL not trimmed
    "wal.truncate.after",  // WAL head truncated to the previous checkpoint
};
inline constexpr size_t kNumKillPoints =
    sizeof(kKillPointNames) / sizeof(kKillPointNames[0]);

/// Crash points crossed by service::Resharder, once per chunk transition in
/// the order a fault-free migration reaches them.  Unlike kKillPointNames
/// these are deployment-scoped (no shard prefix): a reshard crash takes the
/// whole process, and recovery decides resume-vs-rollback from the journal.
inline constexpr const char* kReshardKillPointNames[] = {
    "reshard.before_copy",     // chunk still pending; nothing copied
    "reshard.after_copy",      // copy durable on target, journal=copied
    "reshard.before_cutover",  // copy durable, no cutover record yet
    "reshard.after_cutover",   // cutover durable both sides, bit flipped
    "reshard.before_gc",       // routing on target, source copy not yet GCed
};
inline constexpr size_t kNumReshardKillPoints =
    sizeof(kReshardKillPointNames) / sizeof(kReshardKillPointNames[0]);

/// Outcome of parsing one frame (or the file header) at a given offset.
enum class ParseResult {
  kOk = 0,
  kTruncated = 1,  // fewer bytes available than the frame claims
  kCorrupt = 2,    // CRC mismatch or implausible length/type
};

/// A successfully parsed record, viewing (not owning) the log bytes.
struct ParsedRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  const char* payload = nullptr;
  size_t payload_len = 0;
  size_t frame_len = 0;  // total bytes consumed, frame header included
};

struct WalFileHeader {
  uint64_t version = 0;
  uint64_t key_width = 0;
  uint64_t value_width = 0;
  uint64_t first_lsn = 0;
};

/// Appends one framed record to `out`.
void AppendFrame(std::string* out, uint64_t lsn, WalRecordType type,
                 const void* payload, size_t payload_len);

/// Parses the frame at `data` with `avail` bytes remaining.
ParseResult ParseFrame(const char* data, size_t avail, ParsedRecord* rec);

/// Appends the 44-byte WAL file header to `out`.
void AppendWalFileHeader(std::string* out, uint64_t key_width,
                         uint64_t value_width, uint64_t first_lsn);

/// Parses (and CRC-checks) the WAL file header.
ParseResult ParseWalFileHeader(const char* data, size_t avail,
                               WalFileHeader* header);

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_LOG_FORMAT_H_
