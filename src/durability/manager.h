// DurabilityManager: the serving layer's single handle on durable state.
//
// Owns the WAL writer and the checkpoint store and sequences the
// checkpoint protocol.  TableServer drives it from exactly two places:
//
//   - per micro-batch: Log*() for each acknowledged-successful write, then
//     Commit() — the group commit.  Acks are released only after Commit()
//     returns OK; a clean flush failure surfaces as DataLoss on the
//     affected responses, a crash-style fault leaves the server crashed().
//   - per scrub slot (between batches): MaybeCheckpoint(table), which
//     snapshots the table once the WAL has grown past the configured
//     thresholds, then truncates the log head.
//
// Checkpoint protocol (and why the WAL trims to the *previous* LSN):
//
//   append checkpoint entry @ LSN C      (chunked, CRC-trailed)
//   append + flush kCheckpointMark(C)    (operators can see it in the log)
//   truncate WAL head to C_prev          (records lsn <= C_prev dropped)
//   prune store to the last 2 entries
//
// If the newest checkpoint is torn/corrupt by a crash, recovery falls back
// to the previous one — and the WAL still holds every record after C_prev,
// so no acknowledged write is lost.  Only when the *next* checkpoint
// commits does the log give up the bytes that older checkpoint made
// redundant.

#ifndef DYCUCKOO_DURABILITY_MANAGER_H_
#define DYCUCKOO_DURABILITY_MANAGER_H_

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "common/status.h"
#include "durability/checkpoint.h"
#include "durability/wal.h"
#include "dycuckoo/dynamic_table.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace durability {

struct DurabilityOptions {
  /// Take a checkpoint once this many WAL bytes were flushed since the
  /// last one.  0 disables the byte trigger.
  uint64_t checkpoint_wal_bytes = 1ull << 20;

  /// ... or once this many records were flushed since the last one.
  /// 0 disables the record trigger.
  uint64_t checkpoint_wal_records = 0;

  /// Checkpoints retained after pruning.  Must be >= 2: recovery needs a
  /// fallback when the newest entry is torn by a crash.
  int keep_checkpoints = 2;

  /// Truncate the WAL head after a successful checkpoint.
  bool truncate_wal = true;
};

struct DurabilityStats {
  uint64_t records_logged = 0;
  uint64_t group_commits = 0;
  uint64_t commit_failures = 0;   // clean flush failures (retried)
  uint64_t checkpoints = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t checkpoint_skips = 0;  // trigger hit but WAL had retained records
  uint64_t truncations = 0;
};

/// Outcome of a targeted key read-back from durable state (PointLookup).
enum class PointLookupResult {
  kFound = 0,       // authoritative (key, value) recovered
  kErased = 1,      // the key's last durable action was an erase
  kAbsent = 2,      // durable state has no trace of the key
  kUnreadable = 3,  // durable images cannot answer authoritatively
};

template <typename Key, typename Value>
class DurabilityManager {
 public:
  using Table = DynamicTable<Key, Value>;

  /// `scope` names this manager's fault domain (a shard's segment scope,
  /// e.g. "shard-00003/"): it prefixes every durability kill point and
  /// I/O-fault consultation underneath, so chaos campaigns can crash one
  /// shard's WAL/checkpoint stream while the rest of the fleet runs
  /// clean.  Empty = unscoped (the single-table deployment).
  explicit DurabilityManager(const DurabilityOptions& options = {},
                             uint64_t start_lsn = 1, std::string scope = "")
      : options_(options),
        scope_(std::move(scope)),
        wal_(start_lsn, scope_),
        checkpoints_(scope_) {
    if (options_.keep_checkpoints < 2) options_.keep_checkpoints = 2;
  }

  // --- Per-batch hooks (called by TableServer) -----------------------------

  void LogInsert(Key key, Value value) {
    wal_.AppendInsert(key, value);
    ++stats_.records_logged;
  }

  void LogErase(Key key) {
    wal_.AppendErase(key);
    ++stats_.records_logged;
  }

  void LogResizeBarrier(uint64_t capacity_slots) {
    wal_.AppendResizeBarrier(capacity_slots);
    ++stats_.records_logged;
  }

  /// Marks a reshard chunk cutover in this segment's log.  Written by
  /// service::Resharder on the source and then the target segment; the
  /// target-side record is what recovery trusts (see recovery.h).
  void LogReshardCutover(uint64_t generation, uint32_t chunk,
                         uint32_t shards_from, uint32_t shards_to) {
    wal_.AppendReshardCutover(generation, chunk, shards_from, shards_to);
    ++stats_.records_logged;
  }

  /// Group commit: one flush for everything logged since the last call.
  Status Commit() {
    if (wal_.pending_records() == 0) return Status::OK();
    Status st = wal_.Flush();
    if (st.ok()) {
      ++stats_.group_commits;
    } else if (!dead()) {
      ++stats_.commit_failures;
    }
    return st;
  }

  // --- Checkpointing (called from the between-batch scrub slot) ------------

  bool ShouldCheckpoint() const {
    uint64_t bytes = wal_.bytes_flushed() - bytes_at_last_checkpoint_;
    uint64_t records = wal_.records_flushed() - records_at_last_checkpoint_;
    return (options_.checkpoint_wal_bytes > 0 &&
            bytes >= options_.checkpoint_wal_bytes) ||
           (options_.checkpoint_wal_records > 0 &&
            records >= options_.checkpoint_wal_records);
  }

  Status MaybeCheckpoint(Table* table) {
    if (dead()) return Status::Unavailable("durability: crashed");
    if (!ShouldCheckpoint()) return Status::OK();
    return CheckpointNow(table);
  }

  /// Runs the full checkpoint protocol now.  A clean injected failure is
  /// counted and returned; the next trigger retries.
  Status CheckpointNow(Table* table) {
    if (dead()) return Status::Unavailable("durability: crashed");
    if (wal_.pending_records() > 0) {
      // Records retained by a cleanly failed flush are not durable yet; a
      // checkpoint taken now would stamp an LSN the log cannot back.
      ++stats_.checkpoint_skips;
      return Status::OK();
    }
    const uint64_t checkpoint_lsn = wal_.durable_lsn();

    std::ostringstream snapshot;
    Status st = table->Save(snapshot);
    if (!st.ok()) {
      ++stats_.checkpoint_failures;
      return st;
    }
    st = checkpoints_.AppendEntry(checkpoint_lsn, snapshot.str());
    if (!st.ok()) {
      if (!dead()) ++stats_.checkpoint_failures;
      return st;
    }

    // Mark the checkpoint in the log (operators can correlate the two
    // streams); recovery does not depend on the mark.
    wal_.AppendCheckpointMark(checkpoint_lsn);
    st = Commit();
    if (dead()) return st;
    auto* injector = gpusim::FaultInjector::Active();
    if (injector && injector->OnKillPoint(
                        scope_.empty() ? "ckpt.mark"
                                       : (scope_ + "ckpt.mark").c_str())) {
      killed_ = true;
      return Status::Unavailable("durability: simulated crash at ckpt.mark");
    }

    const uint64_t previous_lsn = last_checkpoint_lsn_;
    last_checkpoint_lsn_ = checkpoint_lsn;
    bytes_at_last_checkpoint_ = wal_.bytes_flushed();
    records_at_last_checkpoint_ = wal_.records_flushed();
    ++stats_.checkpoints;

    if (options_.truncate_wal && previous_lsn > 0) {
      st = wal_.TruncateHead(previous_lsn);
      if (!st.ok()) return st;
      ++stats_.truncations;
    }
    DYCUCKOO_RETURN_NOT_OK(
        checkpoints_.PruneToLast(options_.keep_checkpoints));
    return Status::OK();
  }

  // --- Targeted repair (called by the scrub escalation path) ---------------

  /// Re-derives the authoritative state of ONE key from the durable
  /// images without rebuilding a table: the newest readable checkpoint
  /// snapshot answers for everything up to its LSN, then the WAL records
  /// after it are replayed for this key only (last action wins).  Because
  /// acks are released only after the group commit, every acknowledged
  /// write of the key is visible here — which is what makes the scrubber's
  /// repair-from-durability exact rather than best-effort.
  ///
  /// kUnreadable means the durable state cannot answer authoritatively
  /// (checkpoints exist but none parses, or the WAL header is unreadable);
  /// the caller must escalate to a full-shard repair instead of guessing.
  PointLookupResult PointLookup(Key key, Value* value) const {
    bool found = false;
    bool erased = false;
    Value v{};
    uint64_t base_lsn = 0;
    const std::string& ckpt_image = checkpoints_.durable_image();
    if (!ckpt_image.empty()) {
      bool have_base = false;
      const auto entries = CheckpointStore::Scan(ckpt_image);
      for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        if (!it->valid) continue;
        bool snap_found = false;
        if (!Table::SnapshotFindKey(ckpt_image.data() + it->payload_offset,
                                    it->payload_len, key, &v, &snap_found)) {
          continue;  // snapshot corrupt inside an intact frame: fall back
        }
        have_base = true;
        found = snap_found;
        base_lsn = it->checkpoint_lsn;
        break;
      }
      // The WAL may have been truncated up to a checkpoint none of whose
      // entries still parse: the records that could answer are gone.
      if (!have_base) return PointLookupResult::kUnreadable;
    }
    const std::string& wal_image = wal_.durable_image();
    WalFileHeader header;
    if (ParseWalFileHeader(wal_image.data(), wal_image.size(), &header) !=
        ParseResult::kOk) {
      return PointLookupResult::kUnreadable;
    }
    size_t offset = kWalFileHeaderBytes;
    while (offset < wal_image.size()) {
      ParsedRecord rec;
      if (ParseFrame(wal_image.data() + offset, wal_image.size() - offset,
                     &rec) != ParseResult::kOk) {
        break;  // torn tail: nothing after it was ever acknowledged
      }
      offset += rec.frame_len;
      if (rec.lsn <= base_lsn) continue;  // covered by the checkpoint base
      if (rec.type == WalRecordType::kInsert &&
          rec.payload_len == sizeof(Key) + sizeof(Value)) {
        Key k{};
        std::memcpy(&k, rec.payload, sizeof(Key));
        if (k == key) {
          found = true;
          erased = false;
          std::memcpy(&v, rec.payload + sizeof(Key), sizeof(Value));
        }
      } else if (rec.type == WalRecordType::kErase &&
                 rec.payload_len == sizeof(Key)) {
        Key k{};
        std::memcpy(&k, rec.payload, sizeof(Key));
        if (k == key) {
          found = false;
          erased = true;
        }
      }
    }
    if (found) {
      if (value != nullptr) *value = v;
      return PointLookupResult::kFound;
    }
    return erased ? PointLookupResult::kErased : PointLookupResult::kAbsent;
  }

  // --- State ---------------------------------------------------------------

  /// True once any crash-style fault or kill point fired: the process is
  /// dead as far as durability is concerned, and the server must stop
  /// acknowledging.  Recover() from the durable images is the only exit.
  bool dead() const { return killed_ || wal_.dead() || checkpoints_.dead(); }

  WalWriter<Key, Value>& wal() { return wal_; }
  const WalWriter<Key, Value>& wal() const { return wal_; }
  CheckpointStore& checkpoints() { return checkpoints_; }
  const CheckpointStore& checkpoints() const { return checkpoints_; }
  const DurabilityStats& stats() const { return stats_; }
  const DurabilityOptions& options() const { return options_; }
  const std::string& scope() const { return scope_; }
  uint64_t last_checkpoint_lsn() const { return last_checkpoint_lsn_; }

 private:
  DurabilityOptions options_;
  std::string scope_;
  WalWriter<Key, Value> wal_;
  CheckpointStore checkpoints_;
  DurabilityStats stats_;
  bool killed_ = false;
  uint64_t last_checkpoint_lsn_ = 0;
  uint64_t bytes_at_last_checkpoint_ = 0;
  uint64_t records_at_last_checkpoint_ = 0;
};

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_MANAGER_H_
