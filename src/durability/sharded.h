// Sharded durability: per-shard segment naming, the shard manifest, and
// parallel crash recovery.
//
// A sharded deployment (service/sharded_server.h) gives every shard its
// own WAL segment and checkpoint segment — independent fault domains: a
// torn flush or corrupt snapshot in shard k's segments cannot damage any
// other shard's durable state.  This header names those segments, ties
// them together with a small CRC-framed manifest, and recovers all N
// shards concurrently.
//
// Routing invariant (why the manifest exists): a key's shard is
// ShardRouter::ShardOf(key), a pure function of (key, num_shards,
// router_seed).  The WAL segments are only meaningful under the exact
// routing that wrote them — replaying shard 3's log into a deployment
// with a different shard count or router seed would re-home keys onto
// shards whose probes will never look for them.  The manifest records
// (num_shards, router_seed, key/value widths) so recovery can reject a
// mis-configured resurrection as InvalidArgument instead of silently
// scattering data.
//
// Parallel recovery: each shard's (checkpoint, WAL) pair is independent,
// so RecoverAllShards replays them on a bounded thread pool.  Each
// shard's recovery is single-threaded internally and touches no shared
// mutable state, so per-shard reports are bit-identical to a serial
// replay — parallelism changes wall-clock, never outcomes.

#ifndef DYCUCKOO_DURABILITY_SHARDED_H_
#define DYCUCKOO_DURABILITY_SHARDED_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "durability/recovery.h"
#include "dycuckoo/dynamic_table.h"

namespace dycuckoo {
namespace durability {

// --- Segment naming --------------------------------------------------------

/// Fault-domain scope prefix for shard `shard_id`: "shard-00003/".  Used
/// as the DurabilityManager scope so kill points and I/O faults can be
/// targeted per shard (gpusim::FaultInjectorConfig::io_scope_filter /
/// kill_point_filter).
std::string ShardScope(uint32_t shard_id);

/// WAL segment name for one shard: "wal-00003-of-00016.seg".
std::string WalSegmentName(uint32_t shard_id, uint32_t num_shards);

/// Checkpoint segment name for one shard: "ckpt-00003-of-00016.seg".
std::string CheckpointSegmentName(uint32_t shard_id, uint32_t num_shards);

// --- Manifest --------------------------------------------------------------

inline constexpr uint64_t kShardManifestMagic = 0xD1C0CC00'5AAD1F37ULL;
/// v2 added the deployment generation and a total-length field (so a
/// truncated CRC trailer is classified precisely instead of surfacing as
/// a CRC mismatch).  v1 images are refused with a precise status: the
/// pre-generation era cannot prove which reshard epoch wrote its segments.
inline constexpr uint64_t kShardManifestVersion = 2;

struct ShardManifestEntry {
  uint32_t shard_id = 0;
  std::string wal_segment;
  std::string checkpoint_segment;
};

/// The one file that makes a pile of per-shard segments a deployment:
/// shard count, router identity, record widths, and each shard's segment
/// names.  Encoded with a magic, a version, and a CRC32 trailer so a torn
/// or corrupt manifest is detected, never trusted.
struct ShardManifest {
  uint32_t num_shards = 0;
  uint64_t router_seed = 0;
  uint32_t key_width = 0;
  uint32_t value_width = 0;
  /// Reshard generation: 0 for a fresh deployment, +1 per completed shard
  /// split/merge.  A mid-migration crash recovers against the OLD
  /// generation's manifest plus the migration journal (see ReshardJournal);
  /// the manifest is rewritten with generation+1 only when the migration
  /// finalizes.
  uint64_t generation = 0;
  std::vector<ShardManifestEntry> shards;

  /// A manifest with the conventional segment names for every shard.
  static ShardManifest Make(uint32_t num_shards, uint64_t router_seed,
                            uint32_t key_width, uint32_t value_width);

  std::string Encode() const;

  /// Decodes and CRC-verifies `image`.  DataLoss on corruption,
  /// InvalidArgument on a malformed (but intact) manifest.
  static Status Decode(const std::string& image, ShardManifest* out);

  /// The routing-invariant gate: recovery with a different shard count,
  /// router seed, or record width would mis-route every key.
  Status ValidateCompatible(uint32_t num_shards, uint64_t router_seed,
                            uint32_t key_width, uint32_t value_width) const;
};

// --- Migration journal -----------------------------------------------------

inline constexpr uint64_t kReshardJournalMagic = 0xD1C0CC00'6E4A11CEULL;
inline constexpr uint64_t kReshardJournalVersion = 1;

/// Hash-range chunks per shard of the larger generation.  The chunk count
/// of a migration is kReshardChunksPerShard * max(from, to); because the
/// two counts are in a 2x relation, that is a multiple of BOTH, which is
/// what makes two-generation routing refine the plain modulo map (see
/// service/shard_router.h).
inline constexpr uint32_t kReshardChunksPerShard = 8;

/// Where one migration chunk is in its copy -> cutover -> gc lifecycle.
/// Transitions are strictly forward and each is persisted to the journal
/// image before the next begins, so replaying the journal after a crash
/// lands on the exact chunk (and sub-step) in flight.
enum class ReshardChunkState : uint8_t {
  kPending = 0,  // lives on the source shard; old-generation routing
  kCopied = 1,   // copy durable on the target; routing still old
  kCutOver = 2,  // cutover records durable; routing new; source copy stale
  kDone = 3,     // stale source copy erased (logged); chunk fully migrated
};

/// The durable record of one in-flight shard split/merge.  Written before
/// the first chunk moves and rewritten at every chunk-state transition;
/// deleted only when the migration finalizes (manifest generation bump) or
/// rolls back.  Recovery combines it with kReshardCutover WAL evidence
/// (ResolveReshardJournal) to decide resume-vs-rollback deterministically.
struct ReshardJournal {
  uint64_t generation_from = 0;  // manifest generation being migrated away
  uint64_t router_seed = 0;
  uint32_t shards_from = 0;
  uint32_t shards_to = 0;   // == 2*shards_from (split) or shards_from/2
  uint32_t num_chunks = 0;  // kReshardChunksPerShard * max(from, to)
  std::vector<ReshardChunkState> chunks;

  /// A fresh all-pending journal for from -> to (counts must be in a 2x
  /// relation; the caller validates).
  static ReshardJournal Make(uint64_t generation_from, uint64_t router_seed,
                             uint32_t shards_from, uint32_t shards_to);

  /// Chunk -> shard maps for the two generations.  Every chunk lives
  /// wholly on one shard in each; chunks where the two agree migrate
  /// trivially (no data moves).
  uint32_t source_shard(uint32_t chunk) const { return chunk % shards_from; }
  uint32_t target_shard(uint32_t chunk) const { return chunk % shards_to; }

  /// Chunks migrate strictly in index order; this is the one in flight
  /// (== num_chunks when the migration is complete).
  uint32_t FirstIncomplete() const {
    for (uint32_t c = 0; c < num_chunks; ++c) {
      if (chunks[c] != ReshardChunkState::kDone) return c;
    }
    return num_chunks;
  }

  bool Complete() const { return FirstIncomplete() >= num_chunks; }

  /// True if any chunk's routing has switched to the new generation — the
  /// point of no (cheap) return: recovery must resume, not roll back.
  bool AnyCutOver() const {
    for (ReshardChunkState s : chunks) {
      if (s == ReshardChunkState::kCutOver || s == ReshardChunkState::kDone) {
        return true;
      }
    }
    return false;
  }

  std::string Encode() const;

  /// Decodes and CRC-verifies `image`.  DataLoss on corruption,
  /// InvalidArgument on a malformed (but intact) journal.
  static Status Decode(const std::string& image, ReshardJournal* out);
};

/// Promotes journal chunk states using kReshardCutover records replayed
/// from the shards' WAL segments.  Only a record durable in the chunk's
/// TARGET segment counts: the resharder flushes the chunk copy before it
/// appends any cutover record, so a target-side record proves the chunk's
/// data is fully on the target even if the journal write itself was lost.
/// (Source-side records exist for operator correlation; a stray source
/// record without its target twin proves nothing and is ignored.)
void ResolveReshardJournal(ReshardJournal* journal,
                           const std::vector<RecoveryReport>& reports);

// --- Parallel recovery -----------------------------------------------------

/// One shard's durable byte images, as a crash left them.
struct ShardImages {
  std::string checkpoint;
  std::string wal;
};

/// The result of recovering one shard.  `status` is per shard: one
/// poisoned segment yields one failed outcome while every other shard
/// recovers — the caller (ShardedTableServer::AdoptRecovered) quarantines
/// exactly the failed shards.
template <typename Key, typename Value>
struct ShardRecoveryOutcome {
  uint32_t shard_id = 0;
  Status status;
  std::unique_ptr<DynamicTable<Key, Value>> table;  // null when !status.ok()
  RecoveryReport report;
};

/// Replays all shards' (checkpoint, WAL) image pairs concurrently, at
/// most `max_parallel` at a time (0 = hardware concurrency).  `options`
/// holds each shard's table options (options[i] builds shard i).  Always
/// returns one outcome per shard, in shard order; a failed shard's
/// outcome carries the classifying status (e.g. DataLoss for mid-log
/// corruption) and a report identifying the damaged segment.
template <typename Key, typename Value>
std::vector<ShardRecoveryOutcome<Key, Value>> RecoverAllShards(
    const std::vector<ShardImages>& images,
    const std::vector<DyCuckooOptions>& options, int max_parallel = 0,
    const std::vector<RecoverySource>* sources = nullptr) {
  const uint32_t n = static_cast<uint32_t>(images.size());
  std::vector<ShardRecoveryOutcome<Key, Value>> outcomes(n);
  if (n == 0) return outcomes;
  unsigned workers = max_parallel > 0
                         ? static_cast<unsigned>(max_parallel)
                         : std::max(1u, std::thread::hardware_concurrency());
  if (workers > n) workers = n;

  auto recover_one = [&](uint32_t shard) {
    ShardRecoveryOutcome<Key, Value>& o = outcomes[shard];
    o.shard_id = shard;
    std::istringstream ckpt(images[shard].checkpoint);
    std::istringstream wal(images[shard].wal);
    RecoverySource source;
    if (sources != nullptr) {
      source = (*sources)[shard];
    } else {
      source.shard_id = shard;
      source.segment = WalSegmentName(shard, n);
    }
    o.status = Recover<Key, Value>(ckpt, wal, options[shard], &o.table,
                                   &o.report, source);
  };

  if (workers <= 1) {
    for (uint32_t s = 0; s < n; ++s) recover_one(s);
    return outcomes;
  }
  // Static round-robin sharding over the workers: outcome slots are
  // disjoint per thread, so no synchronization beyond join is needed and
  // every shard's replay is bit-identical to a serial run.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (uint32_t s = w; s < n; s += workers) recover_one(s);
    });
  }
  for (std::thread& t : pool) t.join();
  return outcomes;
}

/// Manifest-gated variant: validates the manifest against the caller's
/// expected routing identity and the image count, then recovers.  This is
/// the entry point a restart should use — it turns "operator pointed
/// recovery at the wrong deployment" into a hard error before any replay.
template <typename Key, typename Value>
Status RecoverAllShards(const ShardManifest& manifest,
                        const std::vector<ShardImages>& images,
                        const std::vector<DyCuckooOptions>& options,
                        uint64_t router_seed,
                        std::vector<ShardRecoveryOutcome<Key, Value>>* out,
                        int max_parallel = 0) {
  DYCUCKOO_RETURN_NOT_OK(manifest.ValidateCompatible(
      static_cast<uint32_t>(images.size()), router_seed,
      static_cast<uint32_t>(sizeof(Key)),
      static_cast<uint32_t>(sizeof(Value))));
  if (options.size() != images.size()) {
    return Status::InvalidArgument(
        "sharded recovery: one DyCuckooOptions per shard required");
  }
  *out = RecoverAllShards<Key, Value>(images, options, max_parallel);
  return Status::OK();
}

// --- Deployment recovery (reshard-aware) -----------------------------------

/// Everything a restart learns from a deployment's durable state: the
/// decoded manifest, the resolved migration journal (if one was in
/// flight), the resume-vs-rollback decision, and one recovery outcome per
/// PHYSICAL shard slot (during a split that is more slots than the
/// manifest's old-generation count).
template <typename Key, typename Value>
struct ShardedDeploymentRecovery {
  ShardManifest manifest;
  ReshardJournal journal;   // meaningful iff mid_reshard
  bool mid_reshard = false;  // resume: some chunk already cut over
  bool rolled_back = false;  // journal discarded; stay at generation_from
  std::vector<ShardRecoveryOutcome<Key, Value>> outcomes;
};

/// The restart entry point for a deployment that may have crashed with a
/// shard split/merge in flight.  `journal_image` empty means no migration
/// was running — this reduces to manifest-gated RecoverAllShards.
/// Otherwise `images`/`options` must cover every PHYSICAL slot
/// (max(shards_from, shards_to), in slot order: the old generation's
/// shards first, then — during a split — the new ones), the journal is
/// cross-checked against the manifest, every slot is replayed, and the
/// journal is resolved against target-side kReshardCutover evidence.
///
/// The decision is deterministic: resume iff any chunk's routing switched
/// to the new generation (journal state or WAL evidence), else roll back.
/// Mixed-generation segment names are preserved: a split's new shards
/// keep their "of-<to>" names while the old generation keeps "of-<from>".
template <typename Key, typename Value>
Status RecoverShardedDeployment(
    const std::string& manifest_image, const std::string& journal_image,
    const std::vector<ShardImages>& images,
    const std::vector<DyCuckooOptions>& options, uint64_t router_seed,
    ShardedDeploymentRecovery<Key, Value>* out, int max_parallel = 0) {
  *out = ShardedDeploymentRecovery<Key, Value>{};
  DYCUCKOO_RETURN_NOT_OK(ShardManifest::Decode(manifest_image, &out->manifest));
  if (journal_image.empty()) {
    return RecoverAllShards<Key, Value>(out->manifest, images, options,
                                        router_seed, &out->outcomes,
                                        max_parallel);
  }
  DYCUCKOO_RETURN_NOT_OK(ReshardJournal::Decode(journal_image, &out->journal));
  const ReshardJournal& j = out->journal;
  if (j.generation_from != out->manifest.generation ||
      j.shards_from != out->manifest.num_shards) {
    return Status::InvalidArgument(
        "sharded recovery: migration journal does not belong to this "
        "manifest (journal generation " + std::to_string(j.generation_from) +
        "/" + std::to_string(j.shards_from) + " shards vs manifest " +
        std::to_string(out->manifest.generation) + "/" +
        std::to_string(out->manifest.num_shards) + ")");
  }
  if (j.router_seed != router_seed ||
      out->manifest.router_seed != router_seed) {
    return Status::InvalidArgument(
        "shard manifest: router seed mismatch — the segments were written "
        "under a different key->shard mapping");
  }
  if (out->manifest.key_width != sizeof(Key) ||
      out->manifest.value_width != sizeof(Value)) {
    return Status::InvalidArgument(
        "shard manifest: key/value widths do not match this table type");
  }
  const uint32_t physical = std::max(j.shards_from, j.shards_to);
  if (images.size() != physical || options.size() != physical) {
    return Status::InvalidArgument(
        "sharded recovery: mid-migration restart needs one image/options "
        "pair per physical slot (" + std::to_string(physical) + ")");
  }
  std::vector<RecoverySource> sources(physical);
  for (uint32_t s = 0; s < physical; ++s) {
    sources[s].shard_id = s;
    sources[s].segment = s < j.shards_from
                             ? WalSegmentName(s, j.shards_from)
                             : WalSegmentName(s, j.shards_to);
  }
  out->outcomes = RecoverAllShards<Key, Value>(images, options, max_parallel,
                                               &sources);
  std::vector<RecoveryReport> reports;
  reports.reserve(physical);
  for (const ShardRecoveryOutcome<Key, Value>& o : out->outcomes) {
    if (o.status.ok()) reports.push_back(o.report);
  }
  ResolveReshardJournal(&out->journal, reports);
  if (out->journal.AnyCutOver()) {
    out->mid_reshard = true;
  } else {
    out->rolled_back = true;
  }
  return Status::OK();
}

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_SHARDED_H_
