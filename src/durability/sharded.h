// Sharded durability: per-shard segment naming, the shard manifest, and
// parallel crash recovery.
//
// A sharded deployment (service/sharded_server.h) gives every shard its
// own WAL segment and checkpoint segment — independent fault domains: a
// torn flush or corrupt snapshot in shard k's segments cannot damage any
// other shard's durable state.  This header names those segments, ties
// them together with a small CRC-framed manifest, and recovers all N
// shards concurrently.
//
// Routing invariant (why the manifest exists): a key's shard is
// ShardRouter::ShardOf(key), a pure function of (key, num_shards,
// router_seed).  The WAL segments are only meaningful under the exact
// routing that wrote them — replaying shard 3's log into a deployment
// with a different shard count or router seed would re-home keys onto
// shards whose probes will never look for them.  The manifest records
// (num_shards, router_seed, key/value widths) so recovery can reject a
// mis-configured resurrection as InvalidArgument instead of silently
// scattering data.
//
// Parallel recovery: each shard's (checkpoint, WAL) pair is independent,
// so RecoverAllShards replays them on a bounded thread pool.  Each
// shard's recovery is single-threaded internally and touches no shared
// mutable state, so per-shard reports are bit-identical to a serial
// replay — parallelism changes wall-clock, never outcomes.

#ifndef DYCUCKOO_DURABILITY_SHARDED_H_
#define DYCUCKOO_DURABILITY_SHARDED_H_

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "durability/recovery.h"
#include "dycuckoo/dynamic_table.h"

namespace dycuckoo {
namespace durability {

// --- Segment naming --------------------------------------------------------

/// Fault-domain scope prefix for shard `shard_id`: "shard-00003/".  Used
/// as the DurabilityManager scope so kill points and I/O faults can be
/// targeted per shard (gpusim::FaultInjectorConfig::io_scope_filter /
/// kill_point_filter).
std::string ShardScope(uint32_t shard_id);

/// WAL segment name for one shard: "wal-00003-of-00016.seg".
std::string WalSegmentName(uint32_t shard_id, uint32_t num_shards);

/// Checkpoint segment name for one shard: "ckpt-00003-of-00016.seg".
std::string CheckpointSegmentName(uint32_t shard_id, uint32_t num_shards);

// --- Manifest --------------------------------------------------------------

inline constexpr uint64_t kShardManifestMagic = 0xD1C0CC00'5AAD1F37ULL;
inline constexpr uint64_t kShardManifestVersion = 1;

struct ShardManifestEntry {
  uint32_t shard_id = 0;
  std::string wal_segment;
  std::string checkpoint_segment;
};

/// The one file that makes a pile of per-shard segments a deployment:
/// shard count, router identity, record widths, and each shard's segment
/// names.  Encoded with a magic, a version, and a CRC32 trailer so a torn
/// or corrupt manifest is detected, never trusted.
struct ShardManifest {
  uint32_t num_shards = 0;
  uint64_t router_seed = 0;
  uint32_t key_width = 0;
  uint32_t value_width = 0;
  std::vector<ShardManifestEntry> shards;

  /// A manifest with the conventional segment names for every shard.
  static ShardManifest Make(uint32_t num_shards, uint64_t router_seed,
                            uint32_t key_width, uint32_t value_width);

  std::string Encode() const;

  /// Decodes and CRC-verifies `image`.  DataLoss on corruption,
  /// InvalidArgument on a malformed (but intact) manifest.
  static Status Decode(const std::string& image, ShardManifest* out);

  /// The routing-invariant gate: recovery with a different shard count,
  /// router seed, or record width would mis-route every key.
  Status ValidateCompatible(uint32_t num_shards, uint64_t router_seed,
                            uint32_t key_width, uint32_t value_width) const;
};

// --- Parallel recovery -----------------------------------------------------

/// One shard's durable byte images, as a crash left them.
struct ShardImages {
  std::string checkpoint;
  std::string wal;
};

/// The result of recovering one shard.  `status` is per shard: one
/// poisoned segment yields one failed outcome while every other shard
/// recovers — the caller (ShardedTableServer::AdoptRecovered) quarantines
/// exactly the failed shards.
template <typename Key, typename Value>
struct ShardRecoveryOutcome {
  uint32_t shard_id = 0;
  Status status;
  std::unique_ptr<DynamicTable<Key, Value>> table;  // null when !status.ok()
  RecoveryReport report;
};

/// Replays all shards' (checkpoint, WAL) image pairs concurrently, at
/// most `max_parallel` at a time (0 = hardware concurrency).  `options`
/// holds each shard's table options (options[i] builds shard i).  Always
/// returns one outcome per shard, in shard order; a failed shard's
/// outcome carries the classifying status (e.g. DataLoss for mid-log
/// corruption) and a report identifying the damaged segment.
template <typename Key, typename Value>
std::vector<ShardRecoveryOutcome<Key, Value>> RecoverAllShards(
    const std::vector<ShardImages>& images,
    const std::vector<DyCuckooOptions>& options, int max_parallel = 0) {
  const uint32_t n = static_cast<uint32_t>(images.size());
  std::vector<ShardRecoveryOutcome<Key, Value>> outcomes(n);
  if (n == 0) return outcomes;
  unsigned workers = max_parallel > 0
                         ? static_cast<unsigned>(max_parallel)
                         : std::max(1u, std::thread::hardware_concurrency());
  if (workers > n) workers = n;

  auto recover_one = [&](uint32_t shard) {
    ShardRecoveryOutcome<Key, Value>& o = outcomes[shard];
    o.shard_id = shard;
    std::istringstream ckpt(images[shard].checkpoint);
    std::istringstream wal(images[shard].wal);
    RecoverySource source;
    source.shard_id = shard;
    source.segment = WalSegmentName(shard, n);
    o.status = Recover<Key, Value>(ckpt, wal, options[shard], &o.table,
                                   &o.report, source);
  };

  if (workers <= 1) {
    for (uint32_t s = 0; s < n; ++s) recover_one(s);
    return outcomes;
  }
  // Static round-robin sharding over the workers: outcome slots are
  // disjoint per thread, so no synchronization beyond join is needed and
  // every shard's replay is bit-identical to a serial run.
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      for (uint32_t s = w; s < n; s += workers) recover_one(s);
    });
  }
  for (std::thread& t : pool) t.join();
  return outcomes;
}

/// Manifest-gated variant: validates the manifest against the caller's
/// expected routing identity and the image count, then recovers.  This is
/// the entry point a restart should use — it turns "operator pointed
/// recovery at the wrong deployment" into a hard error before any replay.
template <typename Key, typename Value>
Status RecoverAllShards(const ShardManifest& manifest,
                        const std::vector<ShardImages>& images,
                        const std::vector<DyCuckooOptions>& options,
                        uint64_t router_seed,
                        std::vector<ShardRecoveryOutcome<Key, Value>>* out,
                        int max_parallel = 0) {
  DYCUCKOO_RETURN_NOT_OK(manifest.ValidateCompatible(
      static_cast<uint32_t>(images.size()), router_seed,
      static_cast<uint32_t>(sizeof(Key)),
      static_cast<uint32_t>(sizeof(Value))));
  if (options.size() != images.size()) {
    return Status::InvalidArgument(
        "sharded recovery: one DyCuckooOptions per shard required");
  }
  *out = RecoverAllShards<Key, Value>(images, options, max_parallel);
  return Status::OK();
}

}  // namespace durability
}  // namespace dycuckoo

#endif  // DYCUCKOO_DURABILITY_SHARDED_H_
