#include "durability/sharded.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace dycuckoo {
namespace durability {

namespace {

std::string FixedWidth(const char* prefix, uint32_t shard_id,
                       uint32_t num_shards, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%05u-of-%05u%s", prefix, shard_id,
                num_shards, suffix);
  return buf;
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(const std::string& in, size_t* off, uint32_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool GetString(const std::string& in, size_t* off, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  s->assign(in, *off, len);
  *off += len;
  return true;
}

}  // namespace

std::string ShardScope(uint32_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05u/", shard_id);
  return buf;
}

std::string WalSegmentName(uint32_t shard_id, uint32_t num_shards) {
  return FixedWidth("wal-", shard_id, num_shards, ".seg");
}

std::string CheckpointSegmentName(uint32_t shard_id, uint32_t num_shards) {
  return FixedWidth("ckpt-", shard_id, num_shards, ".seg");
}

ShardManifest ShardManifest::Make(uint32_t num_shards, uint64_t router_seed,
                                  uint32_t key_width, uint32_t value_width) {
  ShardManifest m;
  m.num_shards = num_shards;
  m.router_seed = router_seed;
  m.key_width = key_width;
  m.value_width = value_width;
  m.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardManifestEntry e;
    e.shard_id = s;
    e.wal_segment = WalSegmentName(s, num_shards);
    e.checkpoint_segment = CheckpointSegmentName(s, num_shards);
    m.shards.push_back(std::move(e));
  }
  return m;
}

std::string ShardManifest::Encode() const {
  std::string out;
  PutU64(&out, kShardManifestMagic);
  PutU64(&out, kShardManifestVersion);
  // Total image length (CRC trailer included), patched in below.  Lets
  // Decode classify a truncated trailer precisely instead of reading a
  // garbage CRC and reporting a mismatch.
  const size_t len_off = out.size();
  PutU32(&out, 0);
  PutU32(&out, num_shards);
  PutU32(&out, key_width);
  PutU32(&out, value_width);
  PutU64(&out, router_seed);
  PutU64(&out, generation);
  PutU32(&out, static_cast<uint32_t>(shards.size()));
  for (const ShardManifestEntry& e : shards) {
    PutU32(&out, e.shard_id);
    PutString(&out, e.wal_segment);
    PutString(&out, e.checkpoint_segment);
  }
  const uint32_t total = static_cast<uint32_t>(out.size() + 4);
  std::memcpy(&out[len_off], &total, 4);
  // CRC over everything after the magic, like the checkpoint entries.
  uint32_t crc = Crc32Update(0, out.data() + 8, out.size() - 8);
  PutU32(&out, crc);
  return out;
}

Status ShardManifest::Decode(const std::string& image, ShardManifest* out) {
  *out = ShardManifest{};
  size_t off = 0;
  uint64_t magic = 0;
  uint64_t version = 0;
  if (!GetU64(image, &off, &magic) || magic != kShardManifestMagic) {
    return Status::DataLoss("shard manifest: bad magic");
  }
  uint32_t total_len = 0;
  if (!GetU64(image, &off, &version) || !GetU32(image, &off, &total_len)) {
    return Status::DataLoss("shard manifest: truncated header");
  }
  if (image.size() < total_len) {
    return Status::DataLoss(
        "shard manifest: truncated (header says " +
        std::to_string(total_len) + " bytes, image has " +
        std::to_string(image.size()) + " — the CRC trailer is gone)");
  }
  if (image.size() > total_len) {
    return Status::DataLoss("shard manifest: trailing bytes after trailer");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + image.size() - 4, 4);
  uint32_t actual_crc = Crc32Update(0, image.data() + 8, image.size() - 8 - 4);
  if (stored_crc != actual_crc) {
    return Status::DataLoss("shard manifest: CRC mismatch");
  }
  if (version != kShardManifestVersion) {
    return Status::InvalidArgument(
        "shard manifest: unsupported version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kShardManifestVersion) +
        "; refusing to guess at a future layout)");
  }
  uint32_t entry_count = 0;
  if (!GetU32(image, &off, &out->num_shards) ||
      !GetU32(image, &off, &out->key_width) ||
      !GetU32(image, &off, &out->value_width) ||
      !GetU64(image, &off, &out->router_seed) ||
      !GetU64(image, &off, &out->generation) ||
      !GetU32(image, &off, &entry_count)) {
    return Status::DataLoss("shard manifest: truncated header");
  }
  if (entry_count != out->num_shards) {
    return Status::InvalidArgument(
        "shard manifest: entry count does not match num_shards");
  }
  out->shards.resize(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    ShardManifestEntry& e = out->shards[i];
    if (!GetU32(image, &off, &e.shard_id) ||
        !GetString(image, &off, &e.wal_segment) ||
        !GetString(image, &off, &e.checkpoint_segment)) {
      return Status::DataLoss("shard manifest: truncated entry");
    }
    if (e.shard_id != i) {
      return Status::InvalidArgument(
          "shard manifest: entries out of shard order");
    }
  }
  return Status::OK();
}

Status ShardManifest::ValidateCompatible(uint32_t expect_shards,
                                         uint64_t expect_router_seed,
                                         uint32_t expect_key_width,
                                         uint32_t expect_value_width) const {
  if (num_shards != expect_shards) {
    return Status::InvalidArgument(
        "shard manifest: deployment has " + std::to_string(expect_shards) +
        " shards but the manifest was written with " +
        std::to_string(num_shards) +
        " — replay would mis-route every key");
  }
  if (router_seed != expect_router_seed) {
    return Status::InvalidArgument(
        "shard manifest: router seed mismatch — the segments were written "
        "under a different key->shard mapping");
  }
  if (key_width != expect_key_width || value_width != expect_value_width) {
    return Status::InvalidArgument(
        "shard manifest: key/value widths do not match this table type");
  }
  return Status::OK();
}

ReshardJournal ReshardJournal::Make(uint64_t generation_from,
                                    uint64_t router_seed,
                                    uint32_t shards_from, uint32_t shards_to) {
  ReshardJournal j;
  j.generation_from = generation_from;
  j.router_seed = router_seed;
  j.shards_from = shards_from;
  j.shards_to = shards_to;
  j.num_chunks =
      kReshardChunksPerShard * (shards_from > shards_to ? shards_from
                                                        : shards_to);
  j.chunks.assign(j.num_chunks, ReshardChunkState::kPending);
  return j;
}

std::string ReshardJournal::Encode() const {
  std::string out;
  PutU64(&out, kReshardJournalMagic);
  PutU64(&out, kReshardJournalVersion);
  PutU64(&out, generation_from);
  PutU64(&out, router_seed);
  PutU32(&out, shards_from);
  PutU32(&out, shards_to);
  PutU32(&out, num_chunks);
  for (ReshardChunkState s : chunks) {
    out.push_back(static_cast<char>(s));
  }
  uint32_t crc = Crc32Update(0, out.data() + 8, out.size() - 8);
  PutU32(&out, crc);
  return out;
}

Status ReshardJournal::Decode(const std::string& image, ReshardJournal* out) {
  *out = ReshardJournal{};
  size_t off = 0;
  uint64_t magic = 0;
  uint64_t version = 0;
  if (!GetU64(image, &off, &magic) || magic != kReshardJournalMagic) {
    return Status::DataLoss("reshard journal: bad magic");
  }
  if (image.size() < off + 4) {
    return Status::DataLoss("reshard journal: truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + image.size() - 4, 4);
  uint32_t actual_crc = Crc32Update(0, image.data() + 8, image.size() - 8 - 4);
  if (stored_crc != actual_crc) {
    return Status::DataLoss("reshard journal: CRC mismatch");
  }
  if (!GetU64(image, &off, &version) || version != kReshardJournalVersion) {
    return Status::InvalidArgument("reshard journal: unsupported version");
  }
  if (!GetU64(image, &off, &out->generation_from) ||
      !GetU64(image, &off, &out->router_seed) ||
      !GetU32(image, &off, &out->shards_from) ||
      !GetU32(image, &off, &out->shards_to) ||
      !GetU32(image, &off, &out->num_chunks)) {
    return Status::DataLoss("reshard journal: truncated header");
  }
  if (out->shards_from == 0 || out->shards_to == 0 ||
      (out->shards_to != 2 * out->shards_from &&
       out->shards_from != 2 * out->shards_to)) {
    return Status::InvalidArgument(
        "reshard journal: shard counts are not a split or merge");
  }
  if (off + out->num_chunks + 4 != image.size()) {
    return Status::DataLoss("reshard journal: truncated chunk states");
  }
  out->chunks.resize(out->num_chunks);
  for (uint32_t c = 0; c < out->num_chunks; ++c) {
    uint8_t raw = static_cast<uint8_t>(image[off + c]);
    if (raw > static_cast<uint8_t>(ReshardChunkState::kDone)) {
      return Status::InvalidArgument(
          "reshard journal: unknown chunk state " + std::to_string(raw));
    }
    out->chunks[c] = static_cast<ReshardChunkState>(raw);
  }
  return Status::OK();
}

void ResolveReshardJournal(ReshardJournal* journal,
                           const std::vector<RecoveryReport>& reports) {
  for (const RecoveryReport& r : reports) {
    for (const ReshardCutoverSeen& c : r.reshard_cutovers) {
      if (c.generation != journal->generation_from) continue;
      if (c.shards_from != journal->shards_from ||
          c.shards_to != journal->shards_to) {
        continue;
      }
      if (c.chunk >= journal->num_chunks) continue;
      if (journal->target_shard(c.chunk) != r.shard_id) continue;
      ReshardChunkState& s = journal->chunks[c.chunk];
      if (s == ReshardChunkState::kPending ||
          s == ReshardChunkState::kCopied) {
        s = ReshardChunkState::kCutOver;
      }
    }
  }
}

}  // namespace durability
}  // namespace dycuckoo
