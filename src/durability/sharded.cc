#include "durability/sharded.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace dycuckoo {
namespace durability {

namespace {

std::string FixedWidth(const char* prefix, uint32_t shard_id,
                       uint32_t num_shards, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%05u-of-%05u%s", prefix, shard_id,
                num_shards, suffix);
  return buf;
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(const std::string& in, size_t* off, uint32_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(*v));
  *off += sizeof(*v);
  return true;
}

bool GetString(const std::string& in, size_t* off, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  s->assign(in, *off, len);
  *off += len;
  return true;
}

}  // namespace

std::string ShardScope(uint32_t shard_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05u/", shard_id);
  return buf;
}

std::string WalSegmentName(uint32_t shard_id, uint32_t num_shards) {
  return FixedWidth("wal-", shard_id, num_shards, ".seg");
}

std::string CheckpointSegmentName(uint32_t shard_id, uint32_t num_shards) {
  return FixedWidth("ckpt-", shard_id, num_shards, ".seg");
}

ShardManifest ShardManifest::Make(uint32_t num_shards, uint64_t router_seed,
                                  uint32_t key_width, uint32_t value_width) {
  ShardManifest m;
  m.num_shards = num_shards;
  m.router_seed = router_seed;
  m.key_width = key_width;
  m.value_width = value_width;
  m.shards.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    ShardManifestEntry e;
    e.shard_id = s;
    e.wal_segment = WalSegmentName(s, num_shards);
    e.checkpoint_segment = CheckpointSegmentName(s, num_shards);
    m.shards.push_back(std::move(e));
  }
  return m;
}

std::string ShardManifest::Encode() const {
  std::string out;
  PutU64(&out, kShardManifestMagic);
  PutU64(&out, kShardManifestVersion);
  PutU32(&out, num_shards);
  PutU32(&out, key_width);
  PutU32(&out, value_width);
  PutU64(&out, router_seed);
  PutU32(&out, static_cast<uint32_t>(shards.size()));
  for (const ShardManifestEntry& e : shards) {
    PutU32(&out, e.shard_id);
    PutString(&out, e.wal_segment);
    PutString(&out, e.checkpoint_segment);
  }
  // CRC over everything after the magic, like the checkpoint entries.
  uint32_t crc = Crc32Update(0, out.data() + 8, out.size() - 8);
  PutU32(&out, crc);
  return out;
}

Status ShardManifest::Decode(const std::string& image, ShardManifest* out) {
  *out = ShardManifest{};
  size_t off = 0;
  uint64_t magic = 0;
  uint64_t version = 0;
  if (!GetU64(image, &off, &magic) || magic != kShardManifestMagic) {
    return Status::DataLoss("shard manifest: bad magic");
  }
  if (image.size() < off + 4) {
    return Status::DataLoss("shard manifest: truncated");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, image.data() + image.size() - 4, 4);
  uint32_t actual_crc = Crc32Update(0, image.data() + 8, image.size() - 8 - 4);
  if (stored_crc != actual_crc) {
    return Status::DataLoss("shard manifest: CRC mismatch");
  }
  if (!GetU64(image, &off, &version) || version != kShardManifestVersion) {
    return Status::InvalidArgument("shard manifest: unsupported version");
  }
  uint32_t entry_count = 0;
  if (!GetU32(image, &off, &out->num_shards) ||
      !GetU32(image, &off, &out->key_width) ||
      !GetU32(image, &off, &out->value_width) ||
      !GetU64(image, &off, &out->router_seed) ||
      !GetU32(image, &off, &entry_count)) {
    return Status::DataLoss("shard manifest: truncated header");
  }
  if (entry_count != out->num_shards) {
    return Status::InvalidArgument(
        "shard manifest: entry count does not match num_shards");
  }
  out->shards.resize(entry_count);
  for (uint32_t i = 0; i < entry_count; ++i) {
    ShardManifestEntry& e = out->shards[i];
    if (!GetU32(image, &off, &e.shard_id) ||
        !GetString(image, &off, &e.wal_segment) ||
        !GetString(image, &off, &e.checkpoint_segment)) {
      return Status::DataLoss("shard manifest: truncated entry");
    }
    if (e.shard_id != i) {
      return Status::InvalidArgument(
          "shard manifest: entries out of shard order");
    }
  }
  return Status::OK();
}

Status ShardManifest::ValidateCompatible(uint32_t expect_shards,
                                         uint64_t expect_router_seed,
                                         uint32_t expect_key_width,
                                         uint32_t expect_value_width) const {
  if (num_shards != expect_shards) {
    return Status::InvalidArgument(
        "shard manifest: deployment has " + std::to_string(expect_shards) +
        " shards but the manifest was written with " +
        std::to_string(num_shards) +
        " — replay would mis-route every key");
  }
  if (router_seed != expect_router_seed) {
    return Status::InvalidArgument(
        "shard manifest: router seed mismatch — the segments were written "
        "under a different key->shard mapping");
  }
  if (key_width != expect_key_width || value_width != expect_value_width) {
    return Status::InvalidArgument(
        "shard manifest: key/value widths do not match this table type");
  }
  return Status::OK();
}

}  // namespace durability
}  // namespace dycuckoo
