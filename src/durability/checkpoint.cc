#include "durability/checkpoint.h"

#include <cstring>

#include "common/hash.h"
#include "durability/log_format.h"
#include "gpusim/fault_injector.h"

namespace dycuckoo {
namespace durability {

namespace {

// Chunk size for checkpoint payload writes.  Small enough that test-sized
// snapshots span several chunks, so the mid-write kill point and torn
// faults land inside a payload rather than degenerating to all-or-nothing.
constexpr size_t kCheckpointChunkBytes = 1024;

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

Status CrashedStatus() {
  return Status::Unavailable(
      "checkpoint: store dead after simulated crash");
}

}  // namespace

const char* CheckpointStore::ScopedName(const char* name) {
  if (scope_.empty()) return name;
  scoped_name_ = scope_;
  scoped_name_ += name;
  return scoped_name_.c_str();
}

Status CheckpointStore::AppendEntry(uint64_t checkpoint_lsn,
                                    const std::string& snapshot) {
  if (dead_) return CrashedStatus();
  auto* injector = gpusim::FaultInjector::Active();
  if (injector && injector->OnKillPoint(ScopedName("ckpt.begin"))) {
    dead_ = true;
    return CrashedStatus();
  }

  // Assemble the full entry first: header, payload, CRC trailer.
  std::string entry;
  entry.reserve(kCheckpointEntryHeaderBytes + snapshot.size() + 4);
  PutU64(&entry, kCheckpointEntryMagic);
  PutU64(&entry, checkpoint_lsn);
  PutU64(&entry, snapshot.size());
  entry.append(snapshot);
  uint32_t crc = Crc32Update(0, entry.data() + 8, entry.size() - 8);
  PutU32(&entry, crc);

  gpusim::IoWriteFault fault = injector ? injector->OnIoFlush(scope_.c_str())
                                        : gpusim::IoWriteFault::kNone;
  switch (fault) {
    case gpusim::IoWriteFault::kFailCleanly:
      ++append_failures_;
      return Status::Internal(
          "checkpoint: entry write failed (injected); nothing persisted");
    case gpusim::IoWriteFault::kShortWrite: {
      // A whole number of chunks reaches storage, then the process dies.
      size_t chunks = (entry.size() + kCheckpointChunkBytes - 1) /
                      kCheckpointChunkBytes;
      size_t keep = injector->NextDraw(/*stream=*/8) % chunks;
      durable_.append(entry.data(), keep * kCheckpointChunkBytes);
      dead_ = true;
      return CrashedStatus();
    }
    case gpusim::IoWriteFault::kTornWrite: {
      size_t cut = 1 + injector->NextDraw(/*stream=*/8) % (entry.size() - 1);
      durable_.append(entry.data(), cut);
      dead_ = true;
      return CrashedStatus();
    }
    case gpusim::IoWriteFault::kBitFlip: {
      uint64_t bit = injector->NextDraw(/*stream=*/9) % (entry.size() * 8);
      entry[bit / 8] ^= static_cast<char>(1u << (bit % 8));
      durable_.append(entry);
      dead_ = true;
      return CrashedStatus();
    }
    case gpusim::IoWriteFault::kNone:
      break;
  }

  // Healthy path: chunked append with a crash point once a partial entry
  // is on storage.
  size_t written = std::min(kCheckpointChunkBytes, entry.size());
  durable_.append(entry.data(), written);
  if (injector && injector->OnKillPoint(ScopedName("ckpt.mid"))) {
    dead_ = true;
    return CrashedStatus();
  }
  while (written < entry.size()) {
    size_t n = std::min(kCheckpointChunkBytes, entry.size() - written);
    durable_.append(entry.data() + written, n);
    written += n;
  }
  ++entries_written_;
  if (injector && injector->OnKillPoint(ScopedName("ckpt.entry_end"))) {
    dead_ = true;
    return CrashedStatus();
  }
  return Status::OK();
}

Status CheckpointStore::PruneToLast(int keep) {
  if (dead_) return CrashedStatus();
  if (keep <= 0) return Status::InvalidArgument("checkpoint: keep must be > 0");
  std::vector<CheckpointEntryView> entries = Scan(durable_);
  int valid = 0;
  for (const CheckpointEntryView& e : entries) valid += e.valid ? 1 : 0;
  if (valid <= keep) return Status::OK();
  int to_drop = valid - keep;
  size_t cut = 0;
  for (const CheckpointEntryView& e : entries) {
    if (!e.valid) continue;
    if (to_drop == 0) {
      cut = e.entry_offset;
      break;
    }
    --to_drop;
  }
  durable_.erase(0, cut);
  ++prunes_;
  return Status::OK();
}

std::vector<CheckpointEntryView> CheckpointStore::Scan(
    const std::string& image) {
  std::vector<CheckpointEntryView> out;
  size_t offset = 0;
  while (offset < image.size()) {
    CheckpointEntryView view;
    view.entry_offset = offset;
    size_t avail = image.size() - offset;
    if (avail < kCheckpointEntryHeaderBytes ||
        GetU64(image.data() + offset) != kCheckpointEntryMagic) {
      // Torn header (or garbage): report it as one invalid trailing entry.
      view.valid = false;
      out.push_back(view);
      break;
    }
    view.checkpoint_lsn = GetU64(image.data() + offset + 8);
    view.payload_len = GetU64(image.data() + offset + 16);
    view.payload_offset = offset + kCheckpointEntryHeaderBytes;
    size_t entry_len = kCheckpointEntryHeaderBytes + view.payload_len + 4;
    if (view.payload_len > image.size() || avail < entry_len) {
      view.valid = false;
      out.push_back(view);
      break;
    }
    uint32_t stored = GetU32(image.data() + offset + entry_len - 4);
    uint32_t actual = Crc32Update(0, image.data() + offset + 8,
                                  entry_len - 8 - 4);
    view.valid = (stored == actual);
    out.push_back(view);
    if (!view.valid) break;  // append-only: nothing trustworthy follows
    offset += entry_len;
  }
  return out;
}

}  // namespace durability
}  // namespace dycuckoo
