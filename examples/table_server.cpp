// Overload-safe serving: fronting a DyCuckoo table with TableServer, which
// adds a bounded admission queue, per-request deadlines on the virtual
// clock, retry with backoff, a circuit breaker, and an online invariant
// scrubber.  The example drives the server through each regime in turn:
// healthy traffic, queue overflow, deadline expiry, a breaker trip under
// injected allocation failure, and recovery.

#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "gpusim/fault_injector.h"
#include "service/table_server.h"

using dycuckoo::DyCuckooOptions;
using dycuckoo::Status;
using Server = dycuckoo::service::DyCuckooServer;

namespace {

Server::Request MakeInserts(uint32_t first_key, int n, uint64_t deadline = 0) {
  Server::Request req;
  req.deadline = deadline;
  for (int i = 0; i < n; ++i) {
    Server::Op op;
    op.type = Server::OpType::kInsert;
    op.key = first_key + static_cast<uint32_t>(i);
    op.value = op.key * 2;
    req.ops.push_back(op);
  }
  return req;
}

void Show(const char* what, Server& server, uint64_t id) {
  Server::Response resp;
  if (!server.TakeResponse(id, &resp)) {
    std::printf("%-28s id=%llu (still pending)\n", what,
                (unsigned long long)id);
    return;
  }
  std::printf("%-28s id=%llu -> %s (attempts=%u, t=%llu)\n", what,
              (unsigned long long)id, resp.status.ToString().c_str(),
              resp.attempts, (unsigned long long)resp.completed_at);
}

}  // namespace

int main() {
  DyCuckooOptions topt;
  topt.initial_capacity = 4096;
  topt.stash_capacity = 64;

  dycuckoo::service::TableServerOptions sopt;
  sopt.queue_capacity = 4;             // tiny on purpose: show backpressure
  sopt.max_batch_ops = 1024;
  sopt.default_deadline_ticks = 5000;  // every request gets a deadline
  sopt.retry.max_attempts = 3;
  sopt.breaker.failure_threshold = 3;
  sopt.breaker.cooldown_ticks = 200;
  sopt.scrub_buckets_per_step = 32;    // scrub a slice between batches

  std::unique_ptr<Server> server;
  Status st = Server::Create(topt, sopt, &server);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 1. Healthy traffic: admitted, batched, executed.
  uint64_t ok_id = server->Submit(MakeInserts(1, 1000));
  server->RunUntilIdle();
  Show("healthy insert batch", *server, ok_id);

  // 2. Backpressure: the 5th un-drained request overflows the queue and is
  // rejected immediately with ResourceExhausted — never silently dropped.
  std::vector<uint64_t> burst;
  for (int i = 0; i < 5; ++i) {
    burst.push_back(server->Submit(MakeInserts(10000 + i * 100, 50)));
  }
  Show("burst overflow (last of 5)", *server, burst.back());
  server->RunUntilIdle();
  for (size_t i = 0; i + 1 < burst.size(); ++i) {
    Server::Response resp;
    server->TakeResponse(burst[i], &resp);
  }

  // 3. Deadlines: the server stalls past the request's deadline; the
  // request is rejected with DeadlineExceeded before any op runs.
  uint64_t late_id = server->Submit(MakeInserts(20000, 50, server->now() + 2));
  server->clock()->Advance(100);  // simulated stall
  server->RunUntilIdle();
  Show("request that missed deadline", *server, late_id);

  // 4. Overload: with every device allocation failing and eviction chains
  // clamped, fresh-key inserts fail terminally once the table saturates;
  // after `failure_threshold` consecutive failures the breaker trips and
  // the server degrades to read-only instead of burning the device.
  {
    dycuckoo::gpusim::FaultInjectorConfig cfg;
    cfg.fail_after_allocs = 0;
    cfg.alloc_tag_filter = "dycuckoo";
    cfg.max_eviction_chain = 0;
    dycuckoo::gpusim::ScopedFaultInjection scoped(cfg);
    uint32_t next_key = 1u << 20;
    for (int i = 0; i < 200 && server->breaker().trips() == 0; ++i) {
      Server::Response resp;
      uint64_t id = server->Submit(MakeInserts(next_key, 100));
      next_key += 100;
      server->RunUntilIdle();
      server->TakeResponse(id, &resp);
    }
    std::printf("breaker state after overload: %s (trips=%llu)\n",
                dycuckoo::service::CircuitBreaker::StateName(
                    server->breaker().state()),
                (unsigned long long)server->breaker().trips());
    uint64_t bounced = server->Submit(MakeInserts(1u << 24, 10));
    server->RunUntilIdle();
    Show("write while read-only", *server, bounced);
  }

  // 5. Recovery: the fault cleared; past the cooldown the next write is
  // admitted as the probe, succeeds, and closes the breaker.
  server->clock()->Advance(sopt.breaker.cooldown_ticks + 1);
  uint64_t probe_id = server->Submit(MakeInserts(1u << 25, 10));
  server->RunUntilIdle();
  Show("probe write after cooldown", *server, probe_id);
  std::printf("breaker recovered: %s (recoveries=%llu)\n",
              server->read_only() ? "no" : "yes",
              (unsigned long long)server->breaker().recoveries());

  auto s = server->stats().Capture();
  std::printf(
      "server stats: submitted=%llu admitted=%llu queue_full=%llu "
      "deadline=%llu unavailable=%llu ok=%llu error=%llu retries=%llu "
      "scrub_steps=%llu\n",
      (unsigned long long)s.submitted, (unsigned long long)s.admitted,
      (unsigned long long)s.rejected_queue_full,
      (unsigned long long)s.rejected_deadline,
      (unsigned long long)s.rejected_unavailable,
      (unsigned long long)s.completed_ok,
      (unsigned long long)s.completed_error, (unsigned long long)s.retries,
      (unsigned long long)s.scrub_steps);
  auto t = server->table()->stats().Capture();
  std::printf("scrubber: passes=%llu buckets=%llu misplaced=%llu\n",
              (unsigned long long)t.scrub_passes,
              (unsigned long long)t.scrub_buckets_scanned,
              (unsigned long long)t.scrub_misplaced_found);
  return 0;
}
