// Retweet counter: the paper's motivating scenario (Section V) — track
// per-account retweet counts for the active accounts of the current
// window, under a skewed stream where celebrity accounts are hammered by
// concurrent updates (the case the voter coordination scheme was built
// for), and expire old windows with batched deletes so the table stays
// sized to the active set.

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dycuckoo/dycuckoo.h"
#include "workload/zipf.h"

int main() {
  using namespace dycuckoo;

  DyCuckooOptions options;
  options.initial_capacity = 4096;
  std::unique_ptr<DyCuckooMap> counts;
  Status st = DyCuckooMap::Create(options, &counts);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  constexpr int kWindows = 8;
  constexpr int kEventsPerWindow = 200000;
  constexpr int kAccounts = 50000;
  Xoroshiro128 rng(2026);
  workload::ZipfSampler zipf(kAccounts, 1.1);  // celebrity skew

  std::vector<uint32_t> window_accounts;  // accounts touched this window
  for (int w = 0; w < kWindows; ++w) {
    // Aggregate this window's retweets host-side per batch (batch = one
    // ingest tick), then upsert the new totals.
    std::unordered_map<uint32_t, uint32_t> delta;
    for (int e = 0; e < kEventsPerWindow; ++e) {
      uint32_t account = 10'000'000u + static_cast<uint32_t>(zipf.Sample(&rng));
      delta[account]++;
    }

    // Read current totals for the touched accounts...
    std::vector<uint32_t> accounts;
    accounts.reserve(delta.size());
    for (const auto& [a, c] : delta) accounts.push_back(a);
    std::vector<uint32_t> totals(accounts.size());
    std::vector<uint8_t> found(accounts.size());
    counts->BulkFind(accounts, totals.data(), found.data());

    // ...and write back the updated counts in one batch.
    std::vector<uint32_t> new_totals(accounts.size());
    for (size_t i = 0; i < accounts.size(); ++i) {
      new_totals[i] = (found[i] ? totals[i] : 0u) + delta[accounts[i]];
    }
    st = counts->BulkInsert(accounts, new_totals);
    if (!st.ok()) {
      std::fprintf(stderr, "upsert failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // Expire the window before last so only the active set stays resident.
    if (!window_accounts.empty()) {
      uint64_t erased = 0;
      (void)counts->BulkErase(window_accounts, &erased);
      std::printf("window %d: expired %llu stale accounts\n", w,
                  (unsigned long long)erased);
    }
    window_accounts = std::move(accounts);

    std::printf(
        "window %d: live_accounts=%llu filled=%.2f memory=%.2f MiB\n", w,
        (unsigned long long)counts->size(), counts->filled_factor(),
        counts->memory_bytes() / 1048576.0);
  }

  // Show the hottest account's total (rank-0 Zipf key).
  uint32_t v = 0;
  if (counts->Find(10'000'000u, &v)) {
    std::printf("celebrity account 10000000 count (last window): %u\n", v);
  }
  auto s = counts->stats().Capture();
  std::printf("stats: upsizes=%llu downsizes=%llu evictions=%llu\n",
              (unsigned long long)s.upsizes, (unsigned long long)s.downsizes,
              (unsigned long long)s.evictions);
  return 0;
}
