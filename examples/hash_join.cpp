// Relational hash join: one of the classic GPU hash-table applications the
// paper's introduction cites.  Builds a DyCuckoo table over the smaller
// relation's join keys, then probes it with the larger relation in batches
// — the standard build/probe plan of a hash join.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "dycuckoo/dycuckoo.h"

namespace {

struct Relation {
  std::vector<uint32_t> keys;    // join attribute
  std::vector<uint32_t> payload; // row id
};

Relation MakeRelation(uint64_t rows, uint32_t key_space, uint64_t seed) {
  Relation r;
  r.keys.resize(rows);
  r.payload.resize(rows);
  dycuckoo::Xoroshiro128 rng(seed);
  for (uint64_t i = 0; i < rows; ++i) {
    r.keys[i] = static_cast<uint32_t>(rng.NextBounded(key_space));
    r.payload[i] = static_cast<uint32_t>(i);
  }
  return r;
}

}  // namespace

int main() {
  using namespace dycuckoo;

  // dim: 200k distinct-ish keys; fact: 2M rows probing them.
  const uint32_t kKeySpace = 200000;
  Relation dim = MakeRelation(200000, kKeySpace, 1);
  Relation fact = MakeRelation(2000000, kKeySpace * 2, 2);  // ~50% selectivity

  DyCuckooOptions options;
  options.initial_capacity = 4096;  // the table sizes itself during build
  std::unique_ptr<DyCuckooMap> build;
  Status st = DyCuckooMap::Create(options, &build);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Build phase: key -> row id of the dimension table (last writer wins on
  // duplicate join keys, i.e., a PK-style join).
  Timer build_timer;
  st = build->BulkInsert(dim.keys, dim.payload);
  if (!st.ok()) {
    std::fprintf(stderr, "build failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double build_s = build_timer.ElapsedSeconds();
  std::printf("build: %zu rows in %.3fs (%.1f Mrows/s), table=%0.2f MiB, "
              "filled=%.2f\n",
              dim.keys.size(), build_s, Mops(dim.keys.size(), build_s),
              build->memory_bytes() / 1048576.0, build->filled_factor());

  // Probe phase in batches, producing (fact_row, dim_row) matches.
  const uint64_t kBatch = 1 << 16;
  uint64_t matches = 0;
  Timer probe_timer;
  std::vector<uint32_t> dim_rows(kBatch);
  std::vector<uint8_t> found(kBatch);
  for (uint64_t off = 0; off < fact.keys.size(); off += kBatch) {
    uint64_t len = std::min<uint64_t>(kBatch, fact.keys.size() - off);
    build->BulkFind(std::span<const uint32_t>(fact.keys.data() + off, len),
                    dim_rows.data(), found.data());
    for (uint64_t i = 0; i < len; ++i) {
      if (found[i]) {
        ++matches;  // a real engine would emit (off + i, dim_rows[i])
      }
    }
  }
  double probe_s = probe_timer.ElapsedSeconds();
  std::printf("probe: %zu rows in %.3fs (%.1f Mrows/s), %llu matches "
              "(%.1f%% selectivity)\n",
              fact.keys.size(), probe_s, Mops(fact.keys.size(), probe_s),
              (unsigned long long)matches,
              100.0 * matches / fact.keys.size());
  return 0;
}
