// Mixed-operation batches: a session store that processes one tick of
// traffic — new logins (insert), session lookups (find), and logouts
// (erase) — in a single grid launch via BulkExecute.
//
// Mixed batches have no ordering guarantee between ops of the same tick
// (the paper notes the semantics are inherently ambiguous under parallel
// execution); this workload keys each op on a distinct session, where the
// ambiguity cannot be observed.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "dycuckoo/dycuckoo.h"

int main() {
  using namespace dycuckoo;
  using Op = DyCuckooMap::MixedOp;

  DyCuckooOptions options;
  options.initial_capacity = 4096;
  std::unique_ptr<DyCuckooMap> sessions;
  if (!DyCuckooMap::Create(options, &sessions).ok()) return 1;

  Xoroshiro128 rng(7);
  std::vector<uint32_t> active;  // session ids believed live
  uint32_t next_session = 1;

  for (int tick = 0; tick < 12; ++tick) {
    std::vector<Op> batch;
    // 20k logins.
    for (int i = 0; i < 20000; ++i) {
      Op op;
      op.type = Op::Type::kInsert;
      op.key = next_session++;
      op.value = static_cast<uint32_t>(rng.Next());  // auth token
      active.push_back(op.key);
      batch.push_back(op);
    }
    // 30k lookups of sessions from previous ticks.
    size_t prior = active.size() - 20000;
    for (int i = 0; i < 30000 && prior > 0; ++i) {
      Op op;
      op.type = Op::Type::kFind;
      op.key = active[rng.NextBounded(prior)];
      batch.push_back(op);
    }
    // 10k logouts of older sessions (swap-remove from the live pool).
    for (int i = 0; i < 10000 && prior > 1; ++i) {
      uint64_t pick = rng.NextBounded(prior);
      Op op;
      op.type = Op::Type::kErase;
      op.key = active[pick];
      active[pick] = active[--prior];
      active[prior] = active.back();
      active.pop_back();
      batch.push_back(op);
    }

    Status st = sessions->BulkExecute(batch);
    if (!st.ok()) {
      std::fprintf(stderr, "tick %d failed: %s\n", tick,
                   st.ToString().c_str());
      return 1;
    }
    uint64_t hits = 0, lookups = 0;
    for (const Op& op : batch) {
      if (op.type == Op::Type::kFind) {
        ++lookups;
        hits += op.hit;
      }
    }
    std::printf("tick %2d: ops=%zu live=%llu filled=%.2f lookup_hits=%llu/%llu "
                "memory=%.2f MiB\n",
                tick, batch.size(), (unsigned long long)sessions->size(),
                sessions->filled_factor(), (unsigned long long)hits,
                (unsigned long long)lookups,
                sessions->memory_bytes() / 1048576.0);
  }

  auto s = sessions->stats().Capture();
  std::printf("totals: %s\n", s.ToString().c_str());
  return 0;
}
