// Memory budget: the paper's core motivation — multiple structures
// coexisting in limited device memory.  Runs the same grow-then-drain
// workload through DyCuckoo and through SlabHash (the prior dynamic GPU
// table), both against a deliberately small device arena, and shows that
// DyCuckoo's bounded filled factor leaves room for a second structure
// while SlabHash's one-way allocator exhausts the budget.

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/slab_hash.h"
#include "dycuckoo/dycuckoo.h"
#include "gpusim/device_arena.h"
#include "workload/dataset.h"

int main() {
  using namespace dycuckoo;

  // A 64 MiB "device" so the squeeze is visible at example scale.
  gpusim::DeviceArena arena(64ull << 20);

  workload::Dataset data;
  Status st = workload::MakeDataset(workload::DatasetId::kCompany, 0.2,
                                    2026, &data);
  if (!st.ok()) return 1;

  auto run = [&](auto* table, const char* name) {
    const uint64_t batch = 100000;
    uint64_t peak = 0;
    // Grow: stream the dataset in.
    for (uint64_t off = 0; off < data.size(); off += batch) {
      uint64_t len = std::min<uint64_t>(batch, data.size() - off);
      Status s = table->BulkInsert(
          std::span<const uint32_t>(data.keys.data() + off, len),
          std::span<const uint32_t>(data.values.data() + off, len));
      if (!s.ok()) {
        std::fprintf(stderr, "%s insert: %s\n", name, s.ToString().c_str());
      }
      peak = std::max(peak, table->memory_bytes());
    }
    std::printf("%-10s after load : size=%8llu memory=%6.2f MiB "
                "filled=%.2f\n",
                name, (unsigned long long)table->size(),
                table->memory_bytes() / 1048576.0, table->filled_factor());
    // Drain: delete 95% of the keys.
    std::vector<uint32_t> victims;
    victims.reserve(data.size());
    for (uint64_t i = 0; i < data.size(); ++i) {
      if (i % 20 != 0) victims.push_back(data.keys[i]);
    }
    (void)table->BulkErase(victims);
    std::printf("%-10s after drain: size=%8llu memory=%6.2f MiB "
                "filled=%.2f (peak %.2f MiB)\n",
                name, (unsigned long long)table->size(),
                table->memory_bytes() / 1048576.0, table->filled_factor(),
                peak / 1048576.0);
  };

  std::printf("device arena: %.0f MiB budget\n",
              arena.capacity_bytes() / 1048576.0);

  {
    DyCuckooOptions o;
    o.initial_capacity = 4096;
    o.arena = &arena;
    std::unique_ptr<DyCuckooMap> t;
    if (!DyCuckooMap::Create(o, &t).ok()) return 1;
    run(t.get(), "DyCuckoo");
    std::printf("arena in use while DyCuckoo resident: %.2f MiB -> room for "
                "other structures: %.2f MiB\n\n",
                arena.used_bytes() / 1048576.0,
                (arena.capacity_bytes() - arena.used_bytes()) / 1048576.0);
  }

  {
    SlabHashOptions o;
    // SlabHash cannot grow its bucket range, so give it a generously sized
    // one (it still cannot give memory back — that is the point here).
    o.initial_capacity = 200000;
    o.arena = &arena;
    std::unique_ptr<SlabHashTable> t;
    if (!SlabHashTable::Create(o, &t).ok()) return 1;
    run(t.get(), "SlabHash");
    std::printf("arena in use while SlabHash resident: %.2f MiB -> room for "
                "other structures: %.2f MiB\n",
                arena.used_bytes() / 1048576.0,
                (arena.capacity_bytes() - arena.used_bytes()) / 1048576.0);
  }
  return 0;
}
