// Quickstart: create a DyCuckoo table, batch-insert, look up, delete, and
// watch it resize itself.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>
#include <vector>

#include "dycuckoo/dycuckoo.h"

int main() {
  using namespace dycuckoo;

  // 1. Configure: 4 subtables, filled factor kept inside [0.30, 0.85].
  DyCuckooOptions options;
  options.initial_capacity = 1024;

  std::unique_ptr<DyCuckooMap> table;
  Status st = DyCuckooMap::Create(options, &table);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Batched upsert — the table grows itself to fit.
  const int n = 100000;
  std::vector<uint32_t> keys(n), values(n);
  for (int i = 0; i < n; ++i) {
    keys[i] = 1000u + i;
    values[i] = i * 3;
  }
  st = table->BulkInsert(keys, values);
  std::printf("inserted %d keys: %s\n", n, st.ToString().c_str());
  std::printf("  size=%llu capacity=%llu filled=%.2f memory=%.2f MiB\n",
              (unsigned long long)table->size(),
              (unsigned long long)table->capacity_slots(),
              table->filled_factor(), table->memory_bytes() / 1048576.0);

  // 3. Batched find: at most two bucket probes per key (two-layer scheme).
  std::vector<uint32_t> out(n);
  std::vector<uint8_t> found(n);
  table->BulkFind(keys, out.data(), found.data());
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += found[i];
  std::printf("found %d/%d keys; value[0]=%u\n", hits, n, out[0]);

  // 4. Single-op convenience API.
  (void)table->Insert(7, 42);
  uint32_t v = 0;
  if (table->Find(7, &v)) std::printf("key 7 -> %u\n", v);

  // 5. Delete most entries — the table shrinks one subtable at a time,
  // keeping the filled factor above the lower bound.
  std::vector<uint32_t> victims(keys.begin(), keys.begin() + n * 9 / 10);
  uint64_t erased = 0;
  st = table->BulkErase(victims, &erased);
  std::printf("erased %llu keys: %s\n", (unsigned long long)erased,
              st.ToString().c_str());
  std::printf("  size=%llu filled=%.2f memory=%.2f MiB (shrunk)\n",
              (unsigned long long)table->size(), table->filled_factor(),
              table->memory_bytes() / 1048576.0);

  auto s = table->stats().Capture();
  std::printf("stats: %s\n", s.ToString().c_str());
  return 0;
}
