// Extension study: the overflow stash (the paper's stated future work).
//
// The paper observes (Figure 11 discussion) that insertions can fail right
// after an upsizing "due to too many evictions", forcing another round of
// upsizing and over-growing the table.  A small stash absorbs those
// failures instead.  Two regimes:
//
//  * static: a fixed-capacity table pushed to very high fill — the stash
//    converts hard insertion failures into stored entries, raising the
//    maximum usable load factor;
//  * dynamic: growth with a short eviction bound — failure-triggered
//    upsizing rounds (beyond the theta-driven ones) are replaced by stash
//    traffic.

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.005);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");

  PrintHeader("Extension: overflow stash under extreme static load "
              "(chain bound 8, target fill 0.97 of a fixed table)",
              "without a stash, hard failures appear near full; a small "
              "stash absorbs them and raises the usable load");
  PrintRow({"stash", "attempted", "stored", "hard_failures",
            "achieved_theta", "stash_used"});

  const uint64_t capacity = 64 * 1024;
  const uint64_t attempted = static_cast<uint64_t>(capacity * 0.97);
  for (uint64_t stash : {0ull, 64ull, 256ull, 1024ull}) {
    DyCuckooOptions o;
    o.auto_resize = false;
    o.initial_capacity = capacity;
    o.max_eviction_chain = 8;
    o.stash_capacity = stash;
    o.seed = args.seed;
    std::unique_ptr<DyCuckooAdapter> t;
    CheckOk(DyCuckooAdapter::Create(o, &t), "create");

    workload::Dataset subset;
    subset.name = data.name;
    uint64_t keep = std::min<uint64_t>(attempted, data.size());
    subset.keys.assign(data.keys.begin(), data.keys.begin() + keep);
    subset.values.assign(data.values.begin(), data.values.begin() + keep);
    (void)MeasureStaticInsert(t.get(), subset);

    auto s = t->table()->stats().Capture();
    PrintRow({std::to_string(stash), std::to_string(keep),
              std::to_string(t->size()), std::to_string(s.insert_failures),
              Fmt(t->filled_factor(), 4),
              std::to_string(t->table()->stash_size())});
  }

  PrintHeader("Extension: stash under dynamic growth with a short eviction "
              "bound (chain 4)",
              "stash absorbs transient post-upsize failures, trimming the "
              "failure-triggered upsizing rounds");
  PrintRow({"stash", "insert_Mops", "upsizes", "transient_failures",
            "stash_inserts"});
  for (uint64_t stash : {0ull, 128ull}) {
    DyCuckooOptions o;
    o.initial_capacity = 1024;
    o.max_eviction_chain = 4;
    o.upper_bound = 0.90;
    o.stash_capacity = stash;
    o.seed = args.seed;
    std::unique_ptr<DyCuckooAdapter> t;
    CheckOk(DyCuckooAdapter::Create(o, &t), "create");
    double mops = MeasureStaticInsert(t.get(), data, nullptr, 4000);
    auto s = t->table()->stats().Capture();
    PrintRow({std::to_string(stash), Fmt(mops), std::to_string(s.upsizes),
              std::to_string(s.insert_failures),
              std::to_string(s.stash_inserts)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
