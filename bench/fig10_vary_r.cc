// Figure 10: dynamic throughput for varying delete/insert ratio r, per
// dataset.
//
// Paper shape: DyCuckoo best overall; DyCuckoo and MegaKV degrade as r
// grows (more deletions → more resizes) with DyCuckoo's margin over MegaKV
// widening (MegaKV's resize is a full rehash); SlabHash *improves* with r
// (symbolic deletes leave free slots for later inserts) while using more
// memory.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Figure 10: dynamic throughput vs delete ratio r (scale=" +
                  Fmt(args.scale, 4) + ")",
              "DyCuckoo best; DyCuckoo/MegaKV fall as r grows (margin "
              "widens); SlabHash rises with r but burns memory");
  PrintRow({"dataset", "r", "SlabHash_Mops", "MegaKV_Mops",
            "DyCuckoo_Mops"});

  for (const auto& data : datasets) {
    for (double r : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      workload::DynamicWorkloadOptions wo;
      wo.batch_size =
          std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
      wo.delete_ratio = r;
      wo.seed = args.seed ^ static_cast<uint64_t>(r * 1000);
      std::vector<workload::DynamicBatch> batches;
      CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

      DynamicConfig cfg;
      cfg.initial_capacity = wo.batch_size;
      cfg.seed = args.seed;

      const int kReps = 2;
      double m_slab =
          BestDynamicMops(kReps, [&] { return MakeSlabDynamic(cfg); }, batches);
      double m_megakv = BestDynamicMops(
          kReps, [&] { return MakeMegaKvDynamic(cfg); }, batches);
      double m_dy = BestDynamicMops(
          kReps, [&] { return MakeDyCuckooDynamic(cfg); }, batches);
      PrintRow({data.name, Fmt(r, 1), Fmt(m_slab), Fmt(m_megakv),
                Fmt(m_dy)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
