// Ablation: the two-layer scheme (Section V-A) vs a plain d-table cuckoo.
//
// Reproduces the paper's motivating tradeoff: with d subtables, a plain
// cuckoo pays d probes per FIND/DELETE (worst case), so lookup cost grows
// with d; the two-layer scheme pins it at two.  Misses show the effect at
// full strength (a hit can stop early).

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.005);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");
  // A disjoint probe set (all misses).
  workload::Dataset missset;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed + 77, &missset),
          "missset");

  PrintHeader("Ablation: two-layer hashing vs plain d-table cuckoo "
              "(RAND, theta=0.85, scale=" + Fmt(args.scale, 4) + ")",
              "plain-mode find cost grows with d (up to d probes per miss); "
              "two-layer stays at <= 2");
  PrintRow({"d", "mode", "find_hit_Mops", "find_miss_Mops", "miss_txn/op",
            "insert_Mops"});

  for (int d : {2, 3, 4, 6, 8}) {
    for (bool two_layer : {true, false}) {
      DyCuckooOptions o;
      o.num_subtables = d;
      o.enable_two_layer = two_layer;
      o.auto_resize = false;
      o.initial_capacity =
          static_cast<uint64_t>(data.unique_keys / 0.85);
      o.seed = args.seed;
      std::unique_ptr<DyCuckooAdapter> t;
      CheckOk(DyCuckooAdapter::Create(o, &t), "create");

      double insert_mops = MeasureStaticInsert(t.get(), data);
      double hit_mops = MeasureStaticFind(t.get(), data, data.size() / 2,
                                          args.seed ^ 3);
      double miss_txn = 0.0;
      double miss_mops = MeasureStaticFind(t.get(), missset,
                                           missset.size() / 2, args.seed ^ 4,
                                           &miss_txn, /*expect_hits=*/false);
      PrintRow({std::to_string(d), two_layer ? "two-layer" : "plain",
                Fmt(hit_mops), Fmt(miss_mops), Fmt(miss_txn),
                Fmt(insert_mops)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
