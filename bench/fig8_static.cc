// Figure 8: static INSERT and FIND throughput of all contenders over the
// five datasets at the default filled factor.
//
// Paper shape: DyCuckoo best at INSERT (d alternative buckets → fewer
// evictions than MegaKV's two); MegaKV slightly best at FIND (two bucket
// probes without the layer-1 hash); Slab behind both; CUDPP slowest (per-
// slot storage, no cache-line buckets).

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.004);
  auto datasets = AllDatasets(args.scale, args.seed);
  const double theta = 0.85;

  PrintHeader("Figure 8: static throughput, all approaches x all datasets "
              "(theta target 0.85, scale=" + Fmt(args.scale, 4) + ")",
              "insert: DyCuckoo best, MegaKV/Slab next, CUDPP last; "
              "find: MegaKV slightly ahead of DyCuckoo; Slab behind");

  PrintRow({"dataset", "op", "CUDPP", "MegaKV", "SlabHash", "DyCuckoo"});
  const int kReps = 2;
  for (const auto& data : datasets) {
    StaticConfig cfg;
    cfg.expected_items = data.unique_keys;
    cfg.target_load = theta;
    cfg.seed = args.seed;
    const uint64_t finds = std::max<uint64_t>(data.size() / 2, 1);

    double ins[4], fnd[4], ins_txn[4], fnd_txn[4];
    BestStaticMops(kReps, [&] { return MakeCudppStatic(cfg); }, data, finds,
                   args.seed ^ 1, &ins[0], &fnd[0], &ins_txn[0], &fnd_txn[0]);
    BestStaticMops(kReps, [&] { return MakeMegaKvStatic(cfg); }, data, finds,
                   args.seed ^ 1, &ins[1], &fnd[1], &ins_txn[1], &fnd_txn[1]);
    BestStaticMops(kReps, [&] { return MakeSlabStatic(cfg); }, data, finds,
                   args.seed ^ 1, &ins[2], &fnd[2], &ins_txn[2], &fnd_txn[2]);
    BestStaticMops(kReps, [&] { return MakeDyCuckooStatic(cfg); }, data,
                   finds, args.seed ^ 1, &ins[3], &fnd[3], &ins_txn[3],
                   &fnd_txn[3]);
    PrintRow({data.name, "insert", Fmt(ins[0]), Fmt(ins[1]), Fmt(ins[2]),
              Fmt(ins[3])});
    PrintRow({data.name, "insert_txn/op", Fmt(ins_txn[0]), Fmt(ins_txn[1]),
              Fmt(ins_txn[2]), Fmt(ins_txn[3])});
    PrintRow({data.name, "find", Fmt(fnd[0]), Fmt(fnd[1]), Fmt(fnd[2]),
              Fmt(fnd[3])});
    PrintRow({data.name, "find_txn/op", Fmt(fnd_txn[0]), Fmt(fnd_txn[1]),
              Fmt(fnd_txn[2]), Fmt(fnd_txn[3])});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
