// Figure 11: filled factor (memory efficiency) tracked after every batch of
// the dynamic workload, per dataset.
//
// Paper shape: DyCuckoo stays inside [alpha, beta] throughout; MegaKV
// saw-tooths (each full rehash halves/doubles the footprint); SlabHash
// decays — tombstoned pool slots are never reclaimed, dropping below 20%
// on COM — so DyCuckoo saves up to ~4x memory at equal contents.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Figure 11: filled factor after each batch (scale=" +
                  Fmt(args.scale, 4) + ", r=0.2)",
              "DyCuckoo bounded in [0.30, 0.85]; MegaKV saw-tooths; "
              "SlabHash decays (symbolic deletion) -> up to ~4x memory gap");
  PrintRow({"dataset", "batch", "SlabHash_theta", "MegaKV_theta",
            "DyCuckoo_theta", "Slab_MB", "MegaKV_MB", "DyCuckoo_MB"});

  for (const auto& data : datasets) {
    workload::DynamicWorkloadOptions wo;
    wo.batch_size =
        std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
    wo.seed = args.seed;
    std::vector<workload::DynamicBatch> batches;
    CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

    DynamicConfig cfg;
    cfg.initial_capacity = wo.batch_size;
    cfg.seed = args.seed;
    auto slab = MakeSlabDynamic(cfg);
    auto megakv = MakeMegaKvDynamic(cfg);
    auto dy = MakeDyCuckooDynamic(cfg);

    auto r_slab = RunDynamicTimeline(slab.get(), batches);
    auto r_megakv = RunDynamicTimeline(megakv.get(), batches);
    auto r_dy = RunDynamicTimeline(dy.get(), batches);

    const size_t n = batches.size();
    const size_t stride = std::max<size_t>(1, n / 40);  // ~40 printed points
    std::vector<double> ratios;
    for (size_t b = 0; b < n; ++b) {
      uint64_t dy_mem = r_dy.memory_after_batch[b];
      uint64_t worst = std::max(r_slab.memory_after_batch[b],
                                r_megakv.memory_after_batch[b]);
      if (dy_mem > 0) {
        ratios.push_back(static_cast<double>(worst) /
                         static_cast<double>(dy_mem));
      }
      if (b % stride != 0 && b != n - 1) continue;
      PrintRow({data.name, std::to_string(b),
                Fmt(r_slab.filled_factor_after_batch[b], 3),
                Fmt(r_megakv.filled_factor_after_batch[b], 3),
                Fmt(r_dy.filled_factor_after_batch[b], 3),
                Fmt(r_slab.memory_after_batch[b] / 1048576.0, 2),
                Fmt(r_megakv.memory_after_batch[b] / 1048576.0, 2),
                Fmt(r_dy.memory_after_batch[b] / 1048576.0, 2)});
    }
    std::sort(ratios.begin(), ratios.end());
    double median = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
    double final_ratio = ratios.empty() ? 0.0 : ratios.back();
    std::printf("# %s: DyCuckoo memory saving vs worst baseline: median "
                "%.1fx, end-of-run %.1fx\n",
                data.name.c_str(), median,
                static_cast<double>(std::max(
                    r_slab.memory_after_batch[n - 1],
                    r_megakv.memory_after_batch[n - 1])) /
                    std::max<double>(
                        1.0,
                        static_cast<double>(r_dy.memory_after_batch[n - 1])));
    (void)final_ratio;  // the printed end-of-run ratio is the honest form
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
