// Figure 14: dynamic throughput for varying filled-factor upper bound beta.
//
// Paper shape: beta barely moves either contender — a higher beta slows
// inserts (denser tables) but triggers fewer resizes; the effects cancel.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Figure 14: dynamic throughput vs upper bound beta (scale=" +
                  Fmt(args.scale, 4) + ", r=0.2)",
              "overall flat for both MegaKV and DyCuckoo (denser tables "
              "vs fewer resizes cancel out)");
  PrintRow({"dataset", "beta", "MegaKV_Mops", "DyCuckoo_Mops"});

  for (const auto& data : datasets) {
    for (double beta : {0.70, 0.75, 0.80, 0.85, 0.90}) {
      workload::DynamicWorkloadOptions wo;
      wo.batch_size =
          std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
      wo.seed = args.seed + static_cast<uint64_t>(beta * 100);
      std::vector<workload::DynamicBatch> batches;
      CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

      DynamicConfig cfg;
      cfg.beta = beta;
      cfg.initial_capacity = wo.batch_size;
      cfg.seed = args.seed;
      const int kReps = 2;
      double m_megakv = BestDynamicMops(
          kReps, [&] { return MakeMegaKvDynamic(cfg); }, batches);
      double m_dy = BestDynamicMops(
          kReps, [&] { return MakeDyCuckooDynamic(cfg); }, batches);
      PrintRow({data.name, Fmt(beta, 2), Fmt(m_megakv), Fmt(m_dy)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
