// Performance stability (the paper's Section IV-B/VI-D argument): MegaKV's
// resize locks and rewrites the whole structure, so the batches that hit a
// resize stall; DyCuckoo's one-subtable resize spreads the work thin.
// Measured as the distribution of per-batch latencies over the dynamic
// timeline — means can hide what maxima reveal.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "gpusim/device_arena.h"
#include "gpusim/grid.h"
#include "service/scrubber.h"
#include "service/shard_router.h"
#include "service/sharded_server.h"

namespace dycuckoo {
namespace bench {
namespace {

struct LatencyProfile {
  double mean_ms;
  double p99_ms;
  double max_ms;
  double max_over_mean;
};

LatencyProfile Profile(HashTableInterface* table,
                       const std::vector<workload::DynamicBatch>& batches) {
  std::vector<double> ms;
  ms.reserve(batches.size());
  std::vector<uint32_t> out;
  std::vector<uint8_t> found;
  for (const auto& b : batches) {
    Timer timer;
    Status st = table->BulkInsert(b.insert_keys, b.insert_values);
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "insert");
    out.resize(b.find_keys.size());
    found.resize(b.find_keys.size());
    table->BulkFind(b.find_keys, out.data(), found.data());
    CheckOk(table->BulkErase(b.delete_keys), "erase");
    ms.push_back(timer.ElapsedMillis());
  }
  std::sort(ms.begin(), ms.end());
  double sum = 0;
  for (double m : ms) sum += m;
  LatencyProfile p;
  p.mean_ms = sum / static_cast<double>(ms.size());
  p.p99_ms = ms[std::min(ms.size() - 1,
                         static_cast<size_t>(ms.size() * 0.99))];
  p.max_ms = ms.back();
  p.max_over_mean = p.max_ms / std::max(p.mean_ms, 1e-9);
  return p;
}

// --- Scrub-verify overhead ------------------------------------------------
//
// The integrity scrubber (service/scrubber.h) re-verifies every slot's
// 8-bit tag as it sweeps, amortized across the serving loop exactly like
// a TableServer would run it: a bounded slice after every batch, sized so
// a full pass completes every ~8 batches.  The delta against the
// unscrubbed baseline is the steady-state cost of silent-corruption
// detection — recorded in BENCH_integrity.json for the perf trajectory.

struct ScrubOverhead {
  LatencyProfile baseline;
  LatencyProfile scrubbed;
  double overhead_pct;     // scrubbed mean over baseline mean, minus one
  uint64_t scrub_passes;
  uint64_t corrupted_slots;  // must be 0: clean run, zero false positives
};

ScrubOverhead ProfileScrubOverhead(
    const DynamicConfig& cfg,
    const std::vector<workload::DynamicBatch>& batches) {
  ScrubOverhead r;
  {
    auto baseline = MakeDyCuckooDynamic(cfg);
    r.baseline = Profile(baseline.get(), batches);
  }

  DyCuckooOptions o;
  o.lower_bound = cfg.alpha;
  o.upper_bound = cfg.beta;
  o.initial_capacity = cfg.initial_capacity;
  o.seed = cfg.seed;
  std::unique_ptr<DyCuckooAdapter> adapter;
  CheckOk(DyCuckooAdapter::Create(o, &adapter), "DyCuckoo create");
  service::OnlineScrubber<uint32_t, uint32_t> scrubber(adapter->table());

  std::vector<double> ms;
  ms.reserve(batches.size());
  std::vector<uint32_t> out;
  std::vector<uint8_t> found;
  for (const auto& b : batches) {
    // Slice size tracks the live table so the pass cadence survives
    // resizes: ~1/8 of the current buckets per batch.
    uint64_t buckets = 0;
    for (int i = 0; i < adapter->table()->num_subtables(); ++i) {
      buckets += adapter->table()->subtable_buckets(i);
    }
    const uint64_t slice = std::max<uint64_t>(1, buckets / 8);
    Timer timer;
    Status st = adapter->BulkInsert(b.insert_keys, b.insert_values);
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "insert");
    out.resize(b.find_keys.size());
    found.resize(b.find_keys.size());
    adapter->BulkFind(b.find_keys, out.data(), found.data());
    CheckOk(adapter->BulkErase(b.delete_keys), "erase");
    // The bench measures the slice's latency, not its findings.
    DYCUCKOO_IGNORE_STATUS(scrubber.Step(slice));
    ms.push_back(timer.ElapsedMillis());
  }
  std::sort(ms.begin(), ms.end());
  double sum = 0;
  for (double m : ms) sum += m;
  r.scrubbed.mean_ms = sum / static_cast<double>(ms.size());
  r.scrubbed.p99_ms =
      ms[std::min(ms.size() - 1, static_cast<size_t>(ms.size() * 0.99))];
  r.scrubbed.max_ms = ms.back();
  r.scrubbed.max_over_mean =
      r.scrubbed.max_ms / std::max(r.scrubbed.mean_ms, 1e-9);
  r.overhead_pct =
      (r.scrubbed.mean_ms / std::max(r.baseline.mean_ms, 1e-9) - 1.0) * 100.0;
  r.scrub_passes = scrubber.full_passes();
  r.corrupted_slots = scrubber.totals().corrupted_slots;
  return r;
}

struct IntegrityDatasetResult {
  std::string dataset;
  ScrubOverhead overhead;
};

void WriteIntegrityJson(const std::string& path,
                        const std::vector<IntegrityDatasetResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"scrub_verify_overhead\",\n");
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t d = 0; d < results.size(); ++d) {
    const ScrubOverhead& r = results[d].overhead;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"baseline_mean_ms\": %.4f, "
        "\"baseline_p99_ms\": %.4f, \"scrubbed_mean_ms\": %.4f, "
        "\"scrubbed_p99_ms\": %.4f, \"overhead_pct\": %.2f, "
        "\"scrub_passes\": %llu, \"corrupted_slots\": %llu}%s\n",
        results[d].dataset.c_str(), r.baseline.mean_ms, r.baseline.p99_ms,
        r.scrubbed.mean_ms, r.scrubbed.p99_ms, r.overhead_pct,
        static_cast<unsigned long long>(r.scrub_passes),
        static_cast<unsigned long long>(r.corrupted_slots),
        d + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// --- Sharded tail latency -------------------------------------------------
//
// The fault-isolation argument has a latency corollary: with the keyspace
// partitioned across N independent tables (service::ShardRouter), a resize
// stalls only the 1/N of each batch routed to the resizing shard.  Per-
// shard per-batch latencies quantify that: the p99 of any one shard sits
// well below the monolithic table's, because no shard ever rehashes the
// whole keyspace at once.  Shard count comes from DYCUCKOO_BENCH_SHARDS
// (default 4, matching the CI chaos matrix).

struct ShardLatency {
  uint32_t shard;
  double mean_ms;
  double p50_ms;
  double p99_ms;
  double max_ms;
};

std::vector<ShardLatency> ProfileSharded(
    uint32_t num_shards, uint64_t seed,
    const DynamicConfig& base_cfg,
    const std::vector<workload::DynamicBatch>& batches) {
  service::ShardRouter router(num_shards, seed);
  std::vector<std::unique_ptr<HashTableInterface>> tables;
  for (uint32_t s = 0; s < num_shards; ++s) {
    DynamicConfig cfg = base_cfg;
    cfg.initial_capacity =
        std::max<uint64_t>(1024, base_cfg.initial_capacity / num_shards);
    cfg.seed = base_cfg.seed + s;
    tables.push_back(MakeDyCuckooDynamic(cfg));
  }

  std::vector<std::vector<double>> ms(num_shards);
  std::vector<uint32_t> ik, iv, fk, dk, out;
  std::vector<uint8_t> found;
  for (const auto& b : batches) {
    for (uint32_t s = 0; s < num_shards; ++s) {
      ik.clear();
      iv.clear();
      fk.clear();
      dk.clear();
      for (size_t i = 0; i < b.insert_keys.size(); ++i) {
        if (router.ShardOf(b.insert_keys[i]) == s) {
          ik.push_back(b.insert_keys[i]);
          iv.push_back(b.insert_values[i]);
        }
      }
      for (uint32_t k : b.find_keys) {
        if (router.ShardOf(k) == s) fk.push_back(k);
      }
      for (uint32_t k : b.delete_keys) {
        if (router.ShardOf(k) == s) dk.push_back(k);
      }
      Timer timer;
      Status st = tables[s]->BulkInsert(ik, iv);
      if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "shard insert");
      out.resize(fk.size());
      found.resize(fk.size());
      tables[s]->BulkFind(fk, out.data(), found.data());
      CheckOk(tables[s]->BulkErase(dk), "shard erase");
      ms[s].push_back(timer.ElapsedMillis());
    }
  }

  std::vector<ShardLatency> profiles;
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::sort(ms[s].begin(), ms[s].end());
    double sum = 0;
    for (double m : ms[s]) sum += m;
    ShardLatency p;
    p.shard = s;
    p.mean_ms = sum / static_cast<double>(ms[s].size());
    p.p50_ms = ms[s][ms[s].size() / 2];
    p.p99_ms = ms[s][std::min(ms[s].size() - 1,
                              static_cast<size_t>(ms[s].size() * 0.99))];
    p.max_ms = ms[s].back();
    profiles.push_back(p);
  }
  return profiles;
}

struct ShardedDatasetResult {
  std::string dataset;
  std::vector<ShardLatency> shards;
};

void WriteShardsJson(const std::string& path, uint32_t num_shards,
                     const std::vector<ShardedDatasetResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"stability_latency\",\n");
  std::fprintf(f, "  \"num_shards\": %u,\n  \"datasets\": [\n", num_shards);
  for (size_t d = 0; d < results.size(); ++d) {
    std::fprintf(f, "    {\"name\": \"%s\", \"shards\": [\n",
                 results[d].dataset.c_str());
    for (size_t s = 0; s < results[d].shards.size(); ++s) {
      const ShardLatency& p = results[d].shards[s];
      std::fprintf(f,
                   "      {\"shard\": %u, \"mean_ms\": %.4f, "
                   "\"p50_ms\": %.4f, \"p99_ms\": %.4f, \"max_ms\": %.4f}%s\n",
                   p.shard, p.mean_ms, p.p50_ms, p.p99_ms, p.max_ms,
                   s + 1 < results[d].shards.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", d + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

// --- Mid-reshard latency --------------------------------------------------
//
// Elastic resharding's latency claim (docs/robustness.md "Elastic
// resharding"): a live split migrates one hash-range chunk at a time, so
// serving latency during the migration should degrade by a bounded,
// chunk-sized amount — not the stop-the-world rehash a full re-partition
// would cost.  Measured against a real ShardedTableServer: per-round
// request latency while quiescent, while a split N -> 2N is in flight,
// and after it finalizes.  The only admissible rejections mid-reshard are
// writes to the one migrating chunk (counted as blocked_writes).

struct ReshardLatency {
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

ReshardLatency SummarizeRounds(std::vector<double> ms) {
  ReshardLatency r;
  if (ms.empty()) return r;
  std::sort(ms.begin(), ms.end());
  double sum = 0;
  for (double m : ms) sum += m;
  r.mean_ms = sum / static_cast<double>(ms.size());
  r.p50_ms = ms[ms.size() / 2];
  r.p99_ms = ms[std::min(ms.size() - 1,
                         static_cast<size_t>(ms.size() * 0.99))];
  r.max_ms = ms.back();
  return r;
}

struct ReshardProfile {
  uint32_t from_shards = 0;
  uint32_t to_shards = 0;
  ReshardLatency quiescent;
  ReshardLatency mid_reshard;
  ReshardLatency post;
  uint64_t reshard_rounds = 0;   // serving rounds with the split in flight
  uint64_t blocked_writes = 0;   // reshard write-window rejections
  bool completed = false;
};

using ShardedSrv = service::ShardedTableServer<uint32_t, uint32_t>;

/// One serving round: a burst of single-op requests (3:1 write:read),
/// drained to idle (which also advances an in-flight migration), all
/// responses retired.  Returns the wall-clock cost of the round.
double ServeReshardRound(ShardedSrv* srv, SplitMix64* rng,
                         uint64_t* blocked) {
  constexpr uint32_t kKeySpace = 4096;
  constexpr int kOpsPerRound = 32;
  Timer timer;
  std::vector<uint64_t> ids;
  ids.reserve(kOpsPerRound);
  for (int i = 0; i < kOpsPerRound; ++i) {
    const uint32_t key = 1 + static_cast<uint32_t>(rng->Next() % kKeySpace);
    ShardedSrv::Op op =
        (rng->Next() % 4 != 0)
            ? ShardedSrv::Op{ShardedSrv::OpType::kInsert, key,
                             static_cast<uint32_t>(rng->Next())}
            : ShardedSrv::Op{ShardedSrv::OpType::kFind, key, 0};
    ShardedSrv::Request req;
    req.ops.push_back(op);
    ids.push_back(srv->Submit(std::move(req)));
  }
  srv->RunUntilIdle();
  for (uint64_t id : ids) {
    ShardedSrv::Response resp;
    if (srv->TakeResponse(id, &resp) && !resp.status.ok() &&
        resp.status.FindDetail("reshard_chunk") != nullptr) {
      ++*blocked;
    }
  }
  return timer.ElapsedMillis();
}

ReshardProfile ProfileMidReshard(uint32_t from_shards, uint64_t seed) {
  ReshardProfile r;
  r.from_shards = from_shards;
  r.to_shards = from_shards * 2;

  gpusim::DeviceArena arena(0);
  gpusim::Grid grid(1);
  DyCuckooOptions topt;
  topt.arena = &arena;
  topt.grid = &grid;
  topt.initial_capacity = 16 * 1024;
  topt.seed = seed;
  ShardedSrv::Options options;
  options.num_shards = from_shards;
  options.durability.checkpoint_wal_bytes = 0;
  options.durability.checkpoint_wal_records = 48;

  std::unique_ptr<ShardedSrv> srv;
  CheckOk(ShardedSrv::Create(topt, options, &srv), "sharded create");

  SplitMix64 rng(seed);
  constexpr int kWarmupRounds = 64;
  constexpr int kMeasuredRounds = 192;
  constexpr int kMaxReshardRounds = 4096;
  for (int i = 0; i < kWarmupRounds; ++i) {
    ServeReshardRound(srv.get(), &rng, &r.blocked_writes);
  }
  std::vector<double> quiet;
  for (int i = 0; i < kMeasuredRounds; ++i) {
    quiet.push_back(ServeReshardRound(srv.get(), &rng, &r.blocked_writes));
  }
  r.blocked_writes = 0;  // only mid-reshard rejections count
  CheckOk(srv->BeginReshard(r.to_shards), "begin reshard");
  std::vector<double> mid;
  while (srv->resharder().active() &&
         mid.size() < static_cast<size_t>(kMaxReshardRounds)) {
    mid.push_back(ServeReshardRound(srv.get(), &rng, &r.blocked_writes));
  }
  r.completed = !srv->resharder().active();
  r.reshard_rounds = mid.size();
  std::vector<double> post;
  for (int i = 0; i < kMeasuredRounds; ++i) {
    post.push_back(ServeReshardRound(srv.get(), &rng, &r.blocked_writes));
  }
  r.quiescent = SummarizeRounds(std::move(quiet));
  r.mid_reshard = SummarizeRounds(std::move(mid));
  r.post = SummarizeRounds(std::move(post));
  return r;
}

void WriteReshardJson(const std::string& path, const ReshardProfile& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  auto lane = [f](const char* name, const ReshardLatency& l, bool comma) {
    std::fprintf(f,
                 "  \"%s\": {\"mean_ms\": %.4f, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"max_ms\": %.4f}%s\n",
                 name, l.mean_ms, l.p50_ms, l.p99_ms, l.max_ms,
                 comma ? "," : "");
  };
  std::fprintf(f, "{\n  \"bench\": \"mid_reshard_latency\",\n");
  std::fprintf(f, "  \"from_shards\": %u,\n  \"to_shards\": %u,\n",
               r.from_shards, r.to_shards);
  lane("quiescent", r.quiescent, true);
  lane("mid_reshard", r.mid_reshard, true);
  lane("post_reshard", r.post, true);
  std::fprintf(f, "  \"reshard_rounds\": %llu,\n",
               static_cast<unsigned long long>(r.reshard_rounds));
  std::fprintf(f, "  \"blocked_writes\": %llu,\n",
               static_cast<unsigned long long>(r.blocked_writes));
  std::fprintf(f, "  \"p99_mid_over_quiescent\": %.2f,\n",
               r.mid_reshard.p99_ms / std::max(r.quiescent.p99_ms, 1e-9));
  std::fprintf(f, "  \"completed\": %s\n}\n",
               r.completed ? "true" : "false");
  std::fclose(f);
}

uint32_t BenchShardsFromEnv() {
  const char* env = std::getenv("DYCUCKOO_BENCH_SHARDS");
  if (env == nullptr || *env == '\0') return 4;
  unsigned long n = std::strtoul(env, nullptr, 0);
  return n == 0 ? 4 : static_cast<uint32_t>(n);
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);
  const uint32_t num_shards = BenchShardsFromEnv();
  std::vector<ShardedDatasetResult> sharded_results;
  std::vector<IntegrityDatasetResult> integrity_results;

  PrintHeader("Stability: per-batch latency distribution over the dynamic "
              "timeline (r=0.2, scale=" + Fmt(args.scale, 4) + ")",
              "MegaKV's full-rehash batches spike the tail (large "
              "max/mean); DyCuckoo's one-subtable resizes keep batches "
              "even");
  PrintRow({"dataset", "table", "mean_ms", "p99_ms", "max_ms", "max/mean"});

  for (const auto& data : datasets) {
    workload::DynamicWorkloadOptions wo;
    wo.batch_size =
        std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
    wo.seed = args.seed;
    std::vector<workload::DynamicBatch> batches;
    CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

    DynamicConfig cfg;
    cfg.initial_capacity = wo.batch_size;
    cfg.seed = args.seed;

    auto megakv = MakeMegaKvDynamic(cfg);
    LatencyProfile pm = Profile(megakv.get(), batches);
    auto dy = MakeDyCuckooDynamic(cfg);
    LatencyProfile pd = Profile(dy.get(), batches);

    PrintRow({data.name, "MegaKV", Fmt(pm.mean_ms, 3), Fmt(pm.p99_ms, 3),
              Fmt(pm.max_ms, 3), Fmt(pm.max_over_mean, 1)});
    PrintRow({data.name, "DyCuckoo", Fmt(pd.mean_ms, 3), Fmt(pd.p99_ms, 3),
              Fmt(pd.max_ms, 3), Fmt(pd.max_over_mean, 1)});

    IntegrityDatasetResult integrity;
    integrity.dataset = data.name;
    integrity.overhead = ProfileScrubOverhead(cfg, batches);
    PrintRow({data.name, "DyCuckoo+scrub",
              Fmt(integrity.overhead.scrubbed.mean_ms, 3),
              Fmt(integrity.overhead.scrubbed.p99_ms, 3),
              Fmt(integrity.overhead.scrubbed.max_ms, 3),
              Fmt(integrity.overhead.scrubbed.max_over_mean, 1)});
    integrity_results.push_back(std::move(integrity));

    ShardedDatasetResult sharded;
    sharded.dataset = data.name;
    sharded.shards = ProfileSharded(num_shards, args.seed, cfg, batches);
    for (const ShardLatency& p : sharded.shards) {
      PrintRow({data.name,
                "DyCuckoo-shard" + std::to_string(p.shard) + "/" +
                    std::to_string(num_shards),
                Fmt(p.mean_ms, 3), Fmt(p.p99_ms, 3), Fmt(p.max_ms, 3),
                Fmt(p.max_ms / std::max(p.mean_ms, 1e-9), 1)});
    }
    sharded_results.push_back(std::move(sharded));
  }
  WriteShardsJson("BENCH_shards.json", num_shards, sharded_results);
  std::printf("# per-shard p50/p99 written to BENCH_shards.json (%u shards; "
              "override with DYCUCKOO_BENCH_SHARDS)\n",
              num_shards);
  WriteIntegrityJson("BENCH_integrity.json", integrity_results);
  std::printf("# scrub-verify overhead vs baseline written to "
              "BENCH_integrity.json\n");

  ReshardProfile rp = ProfileMidReshard(num_shards, args.seed);
  PrintRow({"reshard", "quiescent", Fmt(rp.quiescent.mean_ms, 3),
            Fmt(rp.quiescent.p99_ms, 3), Fmt(rp.quiescent.max_ms, 3),
            Fmt(rp.quiescent.max_ms / std::max(rp.quiescent.mean_ms, 1e-9),
                1)});
  PrintRow({"reshard",
            "split " + std::to_string(rp.from_shards) + "->" +
                std::to_string(rp.to_shards),
            Fmt(rp.mid_reshard.mean_ms, 3), Fmt(rp.mid_reshard.p99_ms, 3),
            Fmt(rp.mid_reshard.max_ms, 3),
            Fmt(rp.mid_reshard.max_ms /
                    std::max(rp.mid_reshard.mean_ms, 1e-9),
                1)});
  PrintRow({"reshard", "post-split", Fmt(rp.post.mean_ms, 3),
            Fmt(rp.post.p99_ms, 3), Fmt(rp.post.max_ms, 3),
            Fmt(rp.post.max_ms / std::max(rp.post.mean_ms, 1e-9), 1)});
  WriteReshardJson("BENCH_reshard.json", rp);
  std::printf("# mid-reshard vs quiescent latency written to "
              "BENCH_reshard.json (%llu reshard rounds, %llu blocked "
              "writes, completed=%s)\n",
              static_cast<unsigned long long>(rp.reshard_rounds),
              static_cast<unsigned long long>(rp.blocked_writes),
              rp.completed ? "true" : "false");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
