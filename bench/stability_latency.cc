// Performance stability (the paper's Section IV-B/VI-D argument): MegaKV's
// resize locks and rewrites the whole structure, so the batches that hit a
// resize stall; DyCuckoo's one-subtable resize spreads the work thin.
// Measured as the distribution of per-batch latencies over the dynamic
// timeline — means can hide what maxima reveal.

#include <algorithm>

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

struct LatencyProfile {
  double mean_ms;
  double p99_ms;
  double max_ms;
  double max_over_mean;
};

LatencyProfile Profile(HashTableInterface* table,
                       const std::vector<workload::DynamicBatch>& batches) {
  std::vector<double> ms;
  ms.reserve(batches.size());
  std::vector<uint32_t> out;
  std::vector<uint8_t> found;
  for (const auto& b : batches) {
    Timer timer;
    Status st = table->BulkInsert(b.insert_keys, b.insert_values);
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "insert");
    out.resize(b.find_keys.size());
    found.resize(b.find_keys.size());
    table->BulkFind(b.find_keys, out.data(), found.data());
    CheckOk(table->BulkErase(b.delete_keys), "erase");
    ms.push_back(timer.ElapsedMillis());
  }
  std::sort(ms.begin(), ms.end());
  double sum = 0;
  for (double m : ms) sum += m;
  LatencyProfile p;
  p.mean_ms = sum / static_cast<double>(ms.size());
  p.p99_ms = ms[std::min(ms.size() - 1,
                         static_cast<size_t>(ms.size() * 0.99))];
  p.max_ms = ms.back();
  p.max_over_mean = p.max_ms / std::max(p.mean_ms, 1e-9);
  return p;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Stability: per-batch latency distribution over the dynamic "
              "timeline (r=0.2, scale=" + Fmt(args.scale, 4) + ")",
              "MegaKV's full-rehash batches spike the tail (large "
              "max/mean); DyCuckoo's one-subtable resizes keep batches "
              "even");
  PrintRow({"dataset", "table", "mean_ms", "p99_ms", "max_ms", "max/mean"});

  for (const auto& data : datasets) {
    workload::DynamicWorkloadOptions wo;
    wo.batch_size =
        std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
    wo.seed = args.seed;
    std::vector<workload::DynamicBatch> batches;
    CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

    DynamicConfig cfg;
    cfg.initial_capacity = wo.batch_size;
    cfg.seed = args.seed;

    auto megakv = MakeMegaKvDynamic(cfg);
    LatencyProfile pm = Profile(megakv.get(), batches);
    auto dy = MakeDyCuckooDynamic(cfg);
    LatencyProfile pd = Profile(dy.get(), batches);

    PrintRow({data.name, "MegaKV", Fmt(pm.mean_ms, 3), Fmt(pm.p99_ms, 3),
              Fmt(pm.max_ms, 3), Fmt(pm.max_over_mean, 1)});
    PrintRow({data.name, "DyCuckoo", Fmt(pd.mean_ms, 3), Fmt(pd.p99_ms, 3),
              Fmt(pd.max_ms, 3), Fmt(pd.max_over_mean, 1)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
