// Figure 5: throughput of atomicCAS / atomicExch under increasing conflict
// degree, against an equivalent volume of coalesced sequential memory IO.
//
// The paper profiles the GPU's atomic units: throughput collapses as more
// threads issue atomics to the same location, while coalesced IO stays
// flat.  Here the same experiment runs on the simulated device's worker
// threads.  Two signals reproduce the figure:
//   * measured Mops per conflict degree (hardware-dependent: the collapse
//     needs >= 2 physical cores to show cache-line ping-pong);
//   * the CAS retry/failure fraction, which rises with the conflict degree
//     on any hardware and is the mechanism behind the GPU collapse.

#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gpusim/atomics.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace bench {
namespace {

enum class OpKind { kCas, kExch, kSequentialIo };

struct Result {
  double mops;
  double cas_fail_fraction;
};

Result RunOps(OpKind kind, int conflict_degree, uint64_t total_ops,
              int num_threads) {
  // conflict_degree threads share each word; spread the rest across words.
  const int words = std::max(1, num_threads / conflict_degree);
  std::vector<std::atomic<uint32_t>> targets(
      static_cast<size_t>(words) * 16);  // 16-word stride: separate lines
  std::vector<std::atomic<uint32_t>> sequential(
      static_cast<size_t>(num_threads) * 1024);

  gpusim::SimCounters::Get().Reset();
  const uint64_t ops_per_thread = total_ops / num_threads;
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<uint32_t>* word = &targets[(t % words) * 16];
      std::atomic<uint32_t>* seq = &sequential[t * 1024];
      switch (kind) {
        case OpKind::kCas: {
          // Lock-style CAS 0->1 followed by release (the paper's usage);
          // failed attempts spin, which is exactly the contention cost.
          uint64_t done = 0;
          while (done < ops_per_thread) {
            if (gpusim::AtomicCas(word, 0, 1) == 0) {
              gpusim::AtomicExch(word, 0);
              done += 2;
            }
          }
          break;
        }
        case OpKind::kExch:
          for (uint64_t i = 0; i < ops_per_thread; ++i) {
            gpusim::AtomicExch(word, static_cast<uint32_t>(i));
          }
          break;
        case OpKind::kSequentialIo:
          for (uint64_t i = 0; i < ops_per_thread; ++i) {
            seq[i & 1023].store(static_cast<uint32_t>(i),
                                std::memory_order_relaxed);
          }
          break;
      }
    });
  }
  for (auto& th : threads) th.join();
  double seconds = timer.ElapsedSeconds();
  auto snap = gpusim::SimCounters::Get().Capture();
  Result r;
  r.mops = Mops(total_ops, seconds);
  r.cas_fail_fraction =
      snap.atomic_cas == 0
          ? 0.0
          : static_cast<double>(snap.atomic_cas_failed) / snap.atomic_cas;
  return r;
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/1.0);
  (void)args;
  const int num_threads = 16;  // simulated concurrent warps
  const uint64_t total_ops = 4'000'000;

  PrintHeader(
      "Figure 5: atomic throughput vs conflict degree (16 sim threads)",
      "atomicCAS/atomicExch Mops collapse as conflicts grow; sequential IO "
      "flat; CAS failure fraction rises with conflicts");
  PrintRow({"conflict_degree", "atomicCAS_Mops", "cas_fail_frac",
            "atomicExch_Mops", "seq_io_Mops"});
  for (int degree : {1, 2, 4, 8, 16}) {
    Result cas = RunOps(OpKind::kCas, degree, total_ops, num_threads);
    Result exch = RunOps(OpKind::kExch, degree, total_ops, num_threads);
    Result seq = RunOps(OpKind::kSequentialIo, degree, total_ops,
                        num_threads);
    PrintRow({std::to_string(degree), Fmt(cas.mops),
              Fmt(cas.cas_fail_fraction, 4), Fmt(exch.mops),
              Fmt(seq.mops)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
