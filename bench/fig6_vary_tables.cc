// Figure 6: DyCuckoo static INSERT and FIND throughput for a varying number
// of subtables d, at fixed total memory (the default filled factor).
//
// Paper shape: INSERT throughput rises with d (more alternative locations →
// fewer failed chains) with diminishing returns; FIND is flat because the
// two-layer scheme always probes at most two buckets.

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.01);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");
  const double theta = 0.85;
  // A power-of-two slot total is representable exactly on the size ladder
  // for every d in 2..8, so all configurations get identical memory and an
  // identical achieved theta (the paper fixes the memory of the structure).
  uint64_t capacity = 1;
  while (capacity * 2 <= static_cast<uint64_t>(data.unique_keys / theta)) {
    capacity *= 2;
  }
  const uint64_t to_insert =
      std::min<uint64_t>(static_cast<uint64_t>(capacity * theta),
                         data.unique_keys);
  workload::Dataset subset;
  subset.name = data.name;
  subset.keys.assign(data.keys.begin(), data.keys.begin() + to_insert);
  subset.values.assign(data.values.begin(), data.values.begin() + to_insert);
  const uint64_t finds = to_insert / 2;

  PrintHeader("Figure 6: DyCuckoo throughput vs number of subtables d "
              "(RAND, theta=0.85, scale=" + Fmt(args.scale, 4) + ")",
              "insert rises with d (diminishing); find flat (two-layer: "
              "always <= 2 probes)");
  PrintRow({"d", "insert_Mops", "find_Mops", "achieved_theta", "evictions"});

  for (int d = 2; d <= 8; ++d) {
    DyCuckooOptions o;
    o.num_subtables = d;
    o.auto_resize = false;
    o.initial_capacity = capacity;
    o.seed = args.seed;
    std::unique_ptr<DyCuckooAdapter> t;
    CheckOk(DyCuckooAdapter::Create(o, &t), "create");

    double insert_mops = MeasureStaticInsert(t.get(), subset);
    double find_mops =
        MeasureStaticFind(t.get(), subset, finds, args.seed ^ 0xF1D);
    PrintRow({std::to_string(d), Fmt(insert_mops), Fmt(find_mops),
              Fmt(t->filled_factor(), 3),
              std::to_string(t->table()->stats().evictions.load())});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
