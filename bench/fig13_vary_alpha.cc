// Figure 13: dynamic throughput for varying filled-factor lower bound
// alpha.  SlabHash is excluded — symbolic deletion cannot control the
// filled factor (as in the paper).
//
// Paper shape: MegaKV's full-rehash downsizing hurts more as alpha rises
// (more downsizes triggered); DyCuckoo barely moves (one subtable at a
// time).  On COM, MegaKV gets competitive only by occupying up to 4x more
// memory.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Figure 13: dynamic throughput vs lower bound alpha (scale=" +
                  Fmt(args.scale, 4) + ", r=0.2)",
              "MegaKV degrades as alpha rises (more full-rehash "
              "downsizes); DyCuckoo stable");
  PrintRow({"dataset", "alpha", "MegaKV_Mops", "DyCuckoo_Mops"});

  for (const auto& data : datasets) {
    for (double alpha : {0.20, 0.25, 0.30, 0.35, 0.40}) {
      workload::DynamicWorkloadOptions wo;
      wo.batch_size =
          std::max<uint64_t>(1000, static_cast<uint64_t>(1e6 * args.scale));
      wo.seed = args.seed + static_cast<uint64_t>(alpha * 100);
      std::vector<workload::DynamicBatch> batches;
      CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

      DynamicConfig cfg;
      cfg.alpha = alpha;
      cfg.initial_capacity = wo.batch_size;
      cfg.seed = args.seed;
      const int kReps = 2;
      double m_megakv = BestDynamicMops(
          kReps, [&] { return MakeMegaKvDynamic(cfg); }, batches);
      double m_dy = BestDynamicMops(
          kReps, [&] { return MakeDyCuckooDynamic(cfg); }, batches);
      PrintRow({data.name, Fmt(alpha, 2), Fmt(m_megakv), Fmt(m_dy)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
