// Figure 12: dynamic throughput for varying batch size, per dataset.
//
// Paper shape: SlabHash stays behind MegaKV and DyCuckoo (a fixed bucket
// range means sustained insertion grows chains); DyCuckoo beats MegaKV with
// the margin increasing at larger batch sizes.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  auto datasets = AllDatasets(args.scale, args.seed);

  PrintHeader("Figure 12: dynamic throughput vs batch size (scale=" +
                  Fmt(args.scale, 4) + ", r=0.2)",
              "SlabHash inferior (chains grow); DyCuckoo > MegaKV with the "
              "margin widening at larger batches");
  PrintRow({"dataset", "batch_size", "SlabHash_Mops", "MegaKV_Mops",
            "DyCuckoo_Mops"});

  // The paper sweeps 2e5..1e6 at full scale.
  for (const auto& data : datasets) {
    for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      uint64_t batch = std::max<uint64_t>(
          500, static_cast<uint64_t>(1e6 * frac * args.scale));
      workload::DynamicWorkloadOptions wo;
      wo.batch_size = batch;
      wo.seed = args.seed + static_cast<uint64_t>(frac * 10);
      std::vector<workload::DynamicBatch> batches;
      CheckOk(workload::BuildDynamicWorkload(data, wo, &batches), "workload");

      DynamicConfig cfg;
      cfg.initial_capacity = batch;
      cfg.seed = args.seed;
      const int kReps = 2;
      double m_slab =
          BestDynamicMops(kReps, [&] { return MakeSlabDynamic(cfg); }, batches);
      double m_megakv = BestDynamicMops(
          kReps, [&] { return MakeMegaKvDynamic(cfg); }, batches);
      double m_dy = BestDynamicMops(
          kReps, [&] { return MakeDyCuckooDynamic(cfg); }, batches);
      PrintRow({data.name, std::to_string(batch), Fmt(m_slab),
                Fmt(m_megakv), Fmt(m_dy)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
