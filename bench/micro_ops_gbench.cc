// Google-benchmark microbenchmarks of the primitive operations: per-batch
// insert / find / erase cost of DyCuckoo at several filled factors, plus
// the warp-voting and pair-hash primitives.  Complements the figure
// harnesses with statistically managed timings.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "dycuckoo/dycuckoo.h"
#include "dycuckoo/pair_map.h"
#include "gpusim/warp.h"

namespace dycuckoo {
namespace {

std::vector<uint32_t> Keys(uint64_t n, uint64_t seed) {
  std::vector<uint32_t> keys(n);
  SplitMix64 rng(seed);
  for (auto& k : keys) {
    do {
      k = static_cast<uint32_t>(rng.Next());
    } while (k >= 0xfffffffeu);
  }
  return keys;
}

void BM_BulkInsertFresh(benchmark::State& state) {
  const uint64_t n = state.range(0);
  auto keys = Keys(n, 1);
  std::vector<uint32_t> values(n, 7);
  for (auto _ : state) {
    state.PauseTiming();
    DyCuckooOptions o;
    o.initial_capacity = n * 2;
    std::unique_ptr<DyCuckooMap> t;
    (void)DyCuckooMap::Create(o, &t);
    state.ResumeTiming();
    benchmark::DoNotOptimize(t->BulkInsert(keys, values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BulkInsertFresh)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 17)->UseRealTime();

void BM_BulkFindAtLoad(benchmark::State& state) {
  const double theta = state.range(0) / 100.0;
  const uint64_t capacity = 1 << 17;
  const uint64_t n = static_cast<uint64_t>(capacity * theta);
  auto keys = Keys(n, 2);
  std::vector<uint32_t> values(n, 1);
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = capacity;
  std::unique_ptr<DyCuckooMap> t;
  (void)DyCuckooMap::Create(o, &t);
  (void)t->BulkInsert(keys, values);
  std::vector<uint32_t> out(keys.size());
  std::vector<uint8_t> found(keys.size());
  for (auto _ : state) {
    t->BulkFind(keys, out.data(), found.data());
    benchmark::DoNotOptimize(found.data());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_BulkFindAtLoad)->Arg(50)->Arg(70)->Arg(85)->Arg(90)->UseRealTime();

void BM_BulkEraseReinsert(benchmark::State& state) {
  const uint64_t n = 1 << 15;
  auto keys = Keys(n, 3);
  std::vector<uint32_t> values(n, 1);
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = n * 2;
  std::unique_ptr<DyCuckooMap> t;
  (void)DyCuckooMap::Create(o, &t);
  (void)t->BulkInsert(keys, values);
  for (auto _ : state) {
    (void)t->BulkErase(keys);
    (void)t->BulkInsert(keys, values);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_BulkEraseReinsert)->UseRealTime();

void BM_UpsizeKernel(benchmark::State& state) {
  const uint64_t n = 1 << 16;
  auto keys = Keys(n, 4);
  std::vector<uint32_t> values(n, 1);
  for (auto _ : state) {
    state.PauseTiming();
    DyCuckooOptions o;
    o.auto_resize = false;
    o.initial_capacity = n * 2;
    std::unique_ptr<DyCuckooMap> t;
    (void)DyCuckooMap::Create(o, &t);
    (void)t->BulkInsert(keys, values);
    state.ResumeTiming();
    (void)t->Upsize();
  }
  state.SetItemsProcessed(state.iterations() * n / 4);
}
BENCHMARK(BM_UpsizeKernel)->UseRealTime();

void BM_PairHash(benchmark::State& state) {
  PairMap pm(4, 123);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pm.PairFor(k++));
  }
}
BENCHMARK(BM_PairHash);

void BM_WarpBallot(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gpusim::Ballot([&](int lane) { return ((x >> lane) & 1) != 0; }));
    ++x;
  }
}
BENCHMARK(BM_WarpBallot);

}  // namespace
}  // namespace dycuckoo

BENCHMARK_MAIN();
