// Ablation: voter coordination (Algorithm 1) vs a spinning leader.
//
// The voter scheme's claim: when a leader fails to take a bucket lock, the
// warp immediately revotes a different leader instead of spinning, so
// conflicting warps keep doing useful work.  Contention is concentrated by
// shrinking the bucket count, so many warps target the same buckets.

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"
#include "gpusim/sim_counters.h"

namespace dycuckoo {
namespace bench {
namespace {

struct Outcome {
  double mops;
  uint64_t lock_conflicts;
};

Outcome Run(bool voter, uint64_t capacity, const workload::Dataset& data,
            uint64_t seed, gpusim::Grid* grid) {
  DyCuckooOptions o;
  o.enable_voter = voter;
  o.auto_resize = false;
  o.initial_capacity = capacity;
  o.seed = seed;
  o.grid = grid;
  std::unique_ptr<DyCuckooAdapter> t;
  CheckOk(DyCuckooAdapter::Create(o, &t), "create");
  // Repeated insert/erase rounds: long enough for warps to overlap on
  // bucket locks.
  constexpr int kRounds = 16;
  auto before = gpusim::SimCounters::Get().Capture();
  Timer timer;
  uint64_t ops = 0;
  for (int round = 0; round < kRounds; ++round) {
    Status st = t->BulkInsert(data.keys, data.values);
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "insert");
    CheckOk(t->BulkErase(data.keys), "erase");
    ops += 2 * data.size();
  }
  double mops = Mops(ops, timer.ElapsedSeconds());
  auto delta = gpusim::SimCounters::Get().Capture() - before;
  return {mops, delta.lock_conflicts};
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");

  PrintHeader("Ablation: voter coordination vs spinning leader "
              "(insert/erase rounds, contention raised by shrinking the "
              "bucket count)",
              "voter resolves conflicts by revoting: fewer wasted lock "
              "attempts and better throughput as contention grows.  NOTE: "
              "lock overlap needs >= 2 physical cores; on a single core "
              "conflicts appear only at preemption points and the contrast "
              "narrows");
  PrintRow({"buckets_total", "mode", "insert_Mops", "lock_conflicts"});

  // Many workers so warps genuinely interleave even on small hosts.
  gpusim::Grid grid(16);
  // One fixed op stream; contention rises as the bucket count shrinks
  // (the ops fit the smallest configuration at theta ~0.55).
  const uint64_t smallest_capacity =
      std::max<uint64_t>(4 * 32, data.unique_keys / 16);
  workload::Dataset subset;
  subset.name = data.name;
  uint64_t keep =
      std::min<uint64_t>(static_cast<uint64_t>(smallest_capacity * 0.55),
                         data.size());
  subset.keys.assign(data.keys.begin(), data.keys.begin() + keep);
  subset.values.assign(data.values.begin(), data.values.begin() + keep);

  for (double fraction : {16.0, 4.0, 1.0}) {
    uint64_t capacity =
        static_cast<uint64_t>(smallest_capacity * fraction);
    Outcome with_voter = Run(true, capacity, subset, args.seed, &grid);
    Outcome spinning = Run(false, capacity, subset, args.seed, &grid);
    uint64_t buckets = capacity / 32;
    PrintRow({std::to_string(buckets), "voter", Fmt(with_voter.mops),
              std::to_string(with_voter.lock_conflicts)});
    PrintRow({std::to_string(buckets), "spin", Fmt(spinning.mops),
              std::to_string(spinning.lock_conflicts)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
