// Table II: the evaluation datasets.  Prints the paper's full-scale
// statistics next to the statistics of the generated streams at the chosen
// scale, verifying the generators reproduce the workload shape.

#include <unordered_map>

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.002);

  PrintHeader("Table II: datasets (paper full-scale vs generated at scale=" +
                  Fmt(args.scale, 4) + ")",
              "generated KV and unique counts match the spec at scale; "
              "duplication capped per dataset");
  PrintRow({"dataset", "paper_kv_pairs", "paper_unique", "gen_kv_pairs",
            "gen_unique", "gen_max_dup", "gen_avg_dup"});

  int count = 0;
  const workload::DatasetSpec* specs = workload::AllDatasetSpecs(&count);
  for (int i = 0; i < count; ++i) {
    workload::Dataset d;
    CheckOk(workload::MakeDataset(specs[i].id, args.scale, args.seed, &d),
            "dataset");
    std::unordered_map<uint32_t, int> occurrences;
    for (uint32_t k : d.keys) occurrences[k]++;
    int max_dup = 0;
    for (const auto& [k, c] : occurrences) max_dup = std::max(max_dup, c);
    double avg_dup =
        static_cast<double>(d.size()) / static_cast<double>(occurrences.size());
    PrintRow({specs[i].name, std::to_string(specs[i].kv_pairs),
              std::to_string(specs[i].unique_keys), std::to_string(d.size()),
              std::to_string(d.unique_keys), std::to_string(max_dup),
              Fmt(avg_dup, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
