// Figure 9: static INSERT and FIND throughput vs the filled factor theta,
// on the RAND dataset.
//
// Paper shape: cuckoo inserts degrade mildly at higher theta, DyCuckoo the
// most stable (two-layer reallocation works even at 90%); cuckoo finds are
// flat except CUDPP, which switches to more hash functions at high load and
// pays more probes; Slab degrades steeply in both (longer chains) — at
// theta=0.9 DyCuckoo leads Slab by >2x insert and ~2.5x find.

#include "bench/bench_common.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.01);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");

  PrintHeader("Figure 9: static throughput vs filled factor (RAND, scale=" +
                  Fmt(args.scale, 4) + ")",
              "inserts degrade mildly with theta (DyCuckoo most stable); "
              "finds flat except CUDPP (more functions) and Slab (chains); "
              "at 0.9 DyCuckoo > 2x Slab insert, ~2.5x find");
  PrintRow({"theta", "op", "CUDPP", "MegaKV", "SlabHash", "DyCuckoo"});

  const int kReps = 2;
  for (double theta : {0.70, 0.75, 0.80, 0.85, 0.90}) {
    StaticConfig cfg;
    cfg.expected_items = data.unique_keys;
    cfg.target_load = theta;
    cfg.seed = args.seed;
    const uint64_t finds = std::max<uint64_t>(data.size() / 2, 1);

    double ins[4], fnd[4], ins_txn[4], fnd_txn[4];
    BestStaticMops(kReps, [&] { return MakeCudppStatic(cfg); }, data, finds,
                   args.seed ^ 2, &ins[0], &fnd[0], &ins_txn[0], &fnd_txn[0]);
    BestStaticMops(kReps, [&] { return MakeMegaKvStatic(cfg); }, data, finds,
                   args.seed ^ 2, &ins[1], &fnd[1], &ins_txn[1], &fnd_txn[1]);
    BestStaticMops(kReps, [&] { return MakeSlabStatic(cfg); }, data, finds,
                   args.seed ^ 2, &ins[2], &fnd[2], &ins_txn[2], &fnd_txn[2]);
    BestStaticMops(kReps, [&] { return MakeDyCuckooStatic(cfg); }, data,
                   finds, args.seed ^ 2, &ins[3], &fnd[3], &ins_txn[3],
                   &fnd_txn[3]);
    PrintRow({Fmt(theta, 2), "insert", Fmt(ins[0]), Fmt(ins[1]), Fmt(ins[2]),
              Fmt(ins[3])});
    PrintRow({Fmt(theta, 2), "insert_txn/op", Fmt(ins_txn[0]),
              Fmt(ins_txn[1]), Fmt(ins_txn[2]), Fmt(ins_txn[3])});
    PrintRow({Fmt(theta, 2), "find", Fmt(fnd[0]), Fmt(fnd[1]), Fmt(fnd[2]),
              Fmt(fnd[3])});
    PrintRow({Fmt(theta, 2), "find_txn/op", Fmt(fnd_txn[0]), Fmt(fnd_txn[1]),
              Fmt(fnd_txn[2]), Fmt(fnd_txn[3])});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
