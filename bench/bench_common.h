// Shared infrastructure for the experiment harness: one binary per paper
// table/figure, each reproducing the corresponding rows/series.
//
// All binaries accept:
//   --scale=<0..1>    dataset scale relative to the paper (default per
//                     binary; chosen so the full suite runs in minutes on a
//                     laptop core — throughput *shape* is the deliverable)
//   --threads=<n>     simulated-warp worker threads (0 = default pool)
//   --seed=<n>        base RNG seed
//
// Output format: a '#'-prefixed header describing the experiment and the
// expected shape from the paper, then comma-separated rows.

#ifndef DYCUCKOO_BENCH_BENCH_COMMON_H_
#define DYCUCKOO_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

#include "baselines/cudpp_cuckoo.h"
#include "baselines/dycuckoo_adapter.h"
#include "baselines/megakv.h"
#include "baselines/slab_hash.h"
#include "baselines/table_interface.h"
#include "common/logging.h"
#include "common/status.h"
#include "common/timer.h"
#include "workload/dataset.h"
#include "workload/dynamic_workload.h"

namespace dycuckoo {
namespace bench {

struct BenchArgs {
  double scale = 0.0;  // 0 = per-binary default
  unsigned threads = 0;
  uint64_t seed = 20260706;

  static BenchArgs Parse(int argc, char** argv, double default_scale) {
    BenchArgs args;
    args.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--scale=", 8) == 0) {
        args.scale = std::atof(a + 8);
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        args.threads = static_cast<unsigned>(std::atoi(a + 10));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        args.seed = static_cast<uint64_t>(std::atoll(a + 7));
      } else if (std::strcmp(a, "--help") == 0) {
        std::fprintf(stderr,
                     "flags: --scale=<f> --threads=<n> --seed=<n>\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", a);
        std::exit(2);
      }
    }
    if (!(args.scale > 0.0 && args.scale <= 1.0)) {
      std::fprintf(stderr, "--scale must be in (0, 1]\n");
      std::exit(2);
    }
    return args;
  }
};

/// Checked status helper for harness code.
inline void CheckOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

// ---------------------------------------------------------------------------
// Contender factories.  Dynamic-mode tables share the resize band; static
// tables are sized from the expected unique-key count and a target load.
// ---------------------------------------------------------------------------

struct DynamicConfig {
  double alpha = 0.30;  // paper Table III defaults
  double beta = 0.85;
  uint64_t initial_capacity = 64 * 1024;
  uint64_t seed = 1;
};

inline std::unique_ptr<HashTableInterface> MakeDyCuckooDynamic(
    const DynamicConfig& c) {
  DyCuckooOptions o;
  o.lower_bound = c.alpha;
  o.upper_bound = c.beta;
  o.initial_capacity = c.initial_capacity;
  o.seed = c.seed;
  std::unique_ptr<DyCuckooAdapter> t;
  CheckOk(DyCuckooAdapter::Create(o, &t), "DyCuckoo create");
  return t;
}

inline std::unique_ptr<HashTableInterface> MakeMegaKvDynamic(
    const DynamicConfig& c) {
  MegaKvOptions o;
  o.lower_bound = c.alpha;
  o.upper_bound = c.beta;
  o.initial_capacity = c.initial_capacity;
  o.seed = c.seed;
  std::unique_ptr<MegaKvTable> t;
  CheckOk(MegaKvTable::Create(o, &t), "MegaKV create");
  return t;
}

inline std::unique_ptr<HashTableInterface> MakeSlabDynamic(
    const DynamicConfig& c) {
  SlabHashOptions o;
  o.initial_capacity = c.initial_capacity;
  o.seed = c.seed;
  std::unique_ptr<SlabHashTable> t;
  CheckOk(SlabHashTable::Create(o, &t), "SlabHash create");
  return t;
}

struct StaticConfig {
  uint64_t expected_items = 0;
  double target_load = 0.85;  // theta
  uint64_t seed = 1;
};

inline std::unique_ptr<HashTableInterface> MakeDyCuckooStatic(
    const StaticConfig& c) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = static_cast<uint64_t>(c.expected_items / c.target_load);
  o.seed = c.seed;
  std::unique_ptr<DyCuckooAdapter> t;
  CheckOk(DyCuckooAdapter::Create(o, &t), "DyCuckoo create");
  return t;
}

inline std::unique_ptr<HashTableInterface> MakeMegaKvStatic(
    const StaticConfig& c) {
  MegaKvOptions o;
  o.auto_resize = false;
  o.initial_capacity = static_cast<uint64_t>(c.expected_items / c.target_load);
  o.seed = c.seed;
  std::unique_ptr<MegaKvTable> t;
  CheckOk(MegaKvTable::Create(o, &t), "MegaKV create");
  return t;
}

inline std::unique_ptr<HashTableInterface> MakeCudppStatic(
    const StaticConfig& c) {
  CudppOptions o;
  o.capacity_slots = static_cast<uint64_t>(c.expected_items / c.target_load);
  o.expected_items = c.expected_items;
  o.seed = c.seed;
  std::unique_ptr<CudppCuckooTable> t;
  CheckOk(CudppCuckooTable::Create(o, &t), "CUDPP create");
  return t;
}

inline std::unique_ptr<HashTableInterface> MakeSlabStatic(
    const StaticConfig& c) {
  SlabHashOptions o;
  // Reserve slots for expected/theta entries, mirroring the other tables'
  // memory budget; chain length then rises with the target load.
  o.initial_capacity =
      static_cast<uint64_t>(c.expected_items / c.target_load);
  o.pool_reserve_factor = 1.0;
  o.seed = c.seed;
  std::unique_ptr<SlabHashTable> t;
  CheckOk(SlabHashTable::Create(o, &t), "SlabHash create");
  return t;
}

// ---------------------------------------------------------------------------
// Measurement drivers.
// ---------------------------------------------------------------------------

/// Device transactions (coalesced bucket reads/writes + atomics) between
/// two counter snapshots, per operation.  Wall-clock on the host measures
/// total instruction work; this is the GPU-faithful cost proxy (a 128-byte
/// bucket read and an 8-byte slot read are both one transaction there).
inline double TransactionsPerOp(const gpusim::SimCounters::Snapshot& before,
                                const gpusim::SimCounters::Snapshot& after,
                                uint64_t ops) {
  if (ops == 0) return 0.0;
  auto d = after - before;
  uint64_t txn = d.bucket_reads + d.bucket_writes + d.atomic_cas +
                 d.atomic_exch;
  return static_cast<double>(txn) / static_cast<double>(ops);
}

/// Inserts the whole dataset in `batch`-sized chunks; returns Mops and
/// optionally the device transactions per insert.
inline double MeasureStaticInsert(HashTableInterface* table,
                                  const workload::Dataset& data,
                                  double* txn_per_op = nullptr,
                                  uint64_t batch = 1 << 16) {
  auto before = gpusim::SimCounters::Get().Capture();
  Timer timer;
  for (uint64_t off = 0; off < data.size(); off += batch) {
    uint64_t len = std::min<uint64_t>(batch, data.size() - off);
    Status st = table->BulkInsert(
        std::span<const uint32_t>(data.keys.data() + off, len),
        std::span<const uint32_t>(data.values.data() + off, len));
    // Static contenders may report residual failures at extreme loads; the
    // paper counts these runs too, so keep going.
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "static insert");
  }
  double seconds = timer.ElapsedSeconds();
  if (txn_per_op != nullptr) {
    *txn_per_op = TransactionsPerOp(
        before, gpusim::SimCounters::Get().Capture(), data.size());
  }
  return Mops(data.size(), seconds);
}

/// Issues `count` random finds drawn from the dataset keys; returns Mops
/// and optionally the device transactions per find.
inline double MeasureStaticFind(HashTableInterface* table,
                                const workload::Dataset& data, uint64_t count,
                                uint64_t seed, double* txn_per_op = nullptr,
                                bool expect_hits = true) {
  std::vector<uint32_t> queries(count);
  SplitMix64 rng(seed);
  for (uint64_t i = 0; i < count; ++i) {
    queries[i] = data.keys[rng.NextBounded(data.size())];
  }
  std::vector<uint32_t> out(count);
  std::vector<uint8_t> found(count);
  auto before = gpusim::SimCounters::Get().Capture();
  Timer timer;
  table->BulkFind(queries, out.data(), found.data());
  double seconds = timer.ElapsedSeconds();
  if (txn_per_op != nullptr) {
    *txn_per_op = TransactionsPerOp(
        before, gpusim::SimCounters::Get().Capture(), count);
  }
  uint64_t hits = 0;
  for (uint64_t i = 0; i < count; ++i) hits += found[i];
  if (expect_hits && hits < count / 2) {
    std::fprintf(stderr, "warning: %s find hit rate %.2f suspiciously low\n",
                 table->name().c_str(),
                 static_cast<double>(hits) / static_cast<double>(count));
  }
  return Mops(count, seconds);
}

/// Per-batch telemetry captured while replaying a dynamic timeline.
struct DynamicRunResult {
  double seconds = 0;
  uint64_t ops = 0;
  std::vector<double> filled_factor_after_batch;
  std::vector<uint64_t> memory_after_batch;

  double mops() const { return Mops(ops, seconds); }
};

/// Replays the batch timeline (insert, find, delete per batch — single-type
/// sub-batches, the paper's execution model) and measures wall time.
inline DynamicRunResult RunDynamicTimeline(
    HashTableInterface* table,
    const std::vector<workload::DynamicBatch>& batches) {
  DynamicRunResult result;
  result.ops = workload::TotalOps(batches);
  std::vector<uint32_t> out;
  std::vector<uint8_t> found;
  Timer timer;
  for (const auto& b : batches) {
    Status st = table->BulkInsert(b.insert_keys, b.insert_values);
    if (!st.ok() && !st.IsInsertionFailure()) CheckOk(st, "dynamic insert");
    out.resize(b.find_keys.size());
    found.resize(b.find_keys.size());
    table->BulkFind(b.find_keys, out.data(), found.data());
    CheckOk(table->BulkErase(b.delete_keys), "dynamic erase");
    result.filled_factor_after_batch.push_back(table->filled_factor());
    result.memory_after_batch.push_back(table->memory_bytes());
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

/// Repeats a dynamic run `reps` times on fresh tables and keeps the best
/// Mops (least scheduler interference on shared machines).
template <typename Factory>
double BestDynamicMops(int reps, Factory&& make_table,
                       const std::vector<workload::DynamicBatch>& batches) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto table = make_table();
    best = std::max(best, RunDynamicTimeline(table.get(), batches).mops());
  }
  return best;
}

/// Repeats a static insert+find measurement; returns best Mops of each and
/// (optionally) the device transactions per op from the last repetition.
template <typename Factory>
void BestStaticMops(int reps, Factory&& make_table,
                    const workload::Dataset& data, uint64_t finds,
                    uint64_t seed, double* insert_mops, double* find_mops,
                    double* insert_txn = nullptr,
                    double* find_txn = nullptr) {
  *insert_mops = 0.0;
  *find_mops = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto table = make_table();
    *insert_mops = std::max(
        *insert_mops, MeasureStaticInsert(table.get(), data, insert_txn));
    *find_mops = std::max(
        *find_mops,
        MeasureStaticFind(table.get(), data, finds, seed, find_txn));
  }
}

// ---------------------------------------------------------------------------
// Output helpers.
// ---------------------------------------------------------------------------

inline void PrintHeader(const std::string& title,
                        const std::string& expectation) {
  std::printf("# %s\n", title.c_str());
  std::printf("# paper shape: %s\n", expectation.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ", ", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// The five paper datasets, generated at `scale`.
inline std::vector<workload::Dataset> AllDatasets(double scale,
                                                  uint64_t seed) {
  std::vector<workload::Dataset> out(5);
  const workload::DatasetId ids[5] = {
      workload::DatasetId::kTwitter, workload::DatasetId::kReddit,
      workload::DatasetId::kLineitem, workload::DatasetId::kCompany,
      workload::DatasetId::kRandom};
  for (int i = 0; i < 5; ++i) {
    CheckOk(workload::MakeDataset(ids[i], scale, seed + i, &out[i]),
            "dataset generation");
  }
  return out;
}

}  // namespace bench
}  // namespace dycuckoo

#endif  // DYCUCKOO_BENCH_BENCH_COMMON_H_
