// Figure 7: throughput of one subtable resize — the proposed upsize /
// downsize kernels vs "rehashing": reinserting the subtable's entries
// through the normal insert path (Algorithm 1).
//
// Paper shape: for upsizing, rehash-by-reinsert is severely limited (the
// other subtables are nearly full, every reinsert evicts); the conflict-free
// split kernel is far faster.  For downsizing both run at low fill, but the
// merge kernel stays well ahead.

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"

namespace dycuckoo {
namespace bench {
namespace {

std::unique_ptr<DyCuckooAdapter> BuildAtLoad(const workload::Dataset& data,
                                             double theta, uint64_t seed,
                                             uint64_t* inserted) {
  DyCuckooOptions o;
  o.auto_resize = false;
  o.initial_capacity = 4 * 32 * 1024;  // fixed geometry; fill to theta
  o.seed = seed;
  std::unique_ptr<DyCuckooAdapter> t;
  CheckOk(DyCuckooAdapter::Create(o, &t), "create");
  uint64_t target = static_cast<uint64_t>(t->table()->capacity_slots() * theta);
  target = std::min<uint64_t>(target, data.unique_keys);
  // Insert the first `target` distinct keys.
  std::vector<uint32_t> keys, values;
  keys.reserve(target);
  {
    std::vector<uint32_t> seen;
    for (uint64_t i = 0; i < data.size() && keys.size() < target; ++i) {
      keys.push_back(data.keys[i]);
      values.push_back(data.values[i]);
    }
  }
  CheckOk(t->BulkInsert(keys, values), "fill");
  *inserted = t->size();
  return t;
}

/// Measures rehash-by-reinsert: drain the subtable that the policy would
/// resize and push its entries back through BulkInsert.
double MeasureReinsertRehash(const workload::Dataset& data, double theta,
                             uint64_t seed, bool upsizing) {
  uint64_t inserted = 0;
  auto t = BuildAtLoad(data, theta, seed, &inserted);
  DyCuckooMap* table = t->table();
  // The victim subtable's entries: emulate by collecting ~1/d of the dump
  // (the subtable the policy would pick).
  auto all = table->Dump();
  uint64_t share = all.size() / table->num_subtables();
  std::vector<uint32_t> keys, values;
  keys.reserve(share);
  for (uint64_t i = 0; i < share; ++i) {
    keys.push_back(all[i].first);
    values.push_back(all[i].second);
  }
  CheckOk(table->BulkErase(keys), "drain");
  if (upsizing) {
    // Upsizing scenario: remaining subtables stay near beta while the
    // rehash reinserts into them.
  }
  Timer timer;
  CheckOk(table->BulkInsert(keys, values), "reinsert");
  return Mops(keys.size(), timer.ElapsedSeconds());
}

/// Measures the proposed kernel: one Upsize() or Downsize() call; the
/// throughput unit is rehashed KVs per second over the affected subtable.
double MeasureKernelResize(const workload::Dataset& data, double theta,
                           uint64_t seed, bool upsizing) {
  uint64_t inserted = 0;
  auto t = BuildAtLoad(data, theta, seed, &inserted);
  DyCuckooMap* table = t->table();
  uint64_t moved_before = table->stats().rehashed_kvs.load();
  Timer timer;
  if (upsizing) {
    CheckOk(table->Upsize(), "upsize");
  } else {
    CheckOk(table->Downsize(), "downsize");
  }
  double seconds = timer.ElapsedSeconds();
  uint64_t moved = table->stats().rehashed_kvs.load() - moved_before;
  CheckOk(table->Validate(), "validate");
  return Mops(moved, seconds);
}

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.05);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");

  PrintHeader("Figure 7: subtable resize throughput — proposed kernels vs "
              "rehash-by-reinsert (Mops over moved KVs)",
              "upsize kernel >> rehash (others nearly full -> evictions); "
              "downsize kernel also ahead; rehash faster when table empty");
  PrintRow({"scenario", "proposed_kernel_Mops", "rehash_reinsert_Mops"});

  // Upsizing at the default upper bound (85% full).
  double up_kernel = MeasureKernelResize(data, 0.85, args.seed, true);
  double up_rehash = MeasureReinsertRehash(data, 0.85, args.seed, true);
  PrintRow({"upsize@0.85", Fmt(up_kernel), Fmt(up_rehash)});

  // Downsizing at the default lower bound (30% full).
  double down_kernel = MeasureKernelResize(data, 0.30, args.seed, false);
  double down_rehash = MeasureReinsertRehash(data, 0.30, args.seed, false);
  PrintRow({"downsize@0.30", Fmt(down_kernel), Fmt(down_rehash)});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
