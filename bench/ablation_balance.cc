// Ablation: Theorem-1 balance guidance vs uniform random placement.
//
// The balance weights route insertions (and eviction victims) toward the
// freest subtable of a key's pair.  With the size ladder mixing n- and
// 2n-bucket subtables, unguided placement overfills the small subtables and
// pays for it in evictions and insertion failures.

#include "bench/bench_common.h"
#include "dycuckoo/dycuckoo.h"

namespace dycuckoo {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv, /*default_scale=*/0.005);
  workload::Dataset data;
  CheckOk(workload::MakeDataset(workload::DatasetId::kRandom, args.scale,
                                args.seed, &data),
          "dataset");

  PrintHeader("Ablation: balance-guided placement vs uniform random "
              "(RAND, mixed-ladder geometry, scale=" + Fmt(args.scale, 4) +
                  ")",
              "balance keeps subtable fills even and evictions low at high "
              "theta; random placement overfills the smaller subtables");
  PrintRow({"theta", "mode", "insert_Mops", "evictions", "insert_failures",
            "subtable_fill_spread"});

  for (double theta : {0.70, 0.85, 0.92}) {
    for (bool balance : {true, false}) {
      DyCuckooOptions o;
      o.enable_balance = balance;
      o.auto_resize = false;
      // A capacity hint the ladder fills with mixed subtable sizes.
      o.initial_capacity =
          static_cast<uint64_t>(data.unique_keys / theta) / 5 * 5;
      o.seed = args.seed;
      std::unique_ptr<DyCuckooAdapter> t;
      CheckOk(DyCuckooAdapter::Create(o, &t), "create");

      uint64_t keep = std::min<uint64_t>(
          static_cast<uint64_t>(t->table()->capacity_slots() * theta),
          data.size());
      workload::Dataset subset;
      subset.name = data.name;
      subset.keys.assign(data.keys.begin(), data.keys.begin() + keep);
      subset.values.assign(data.values.begin(), data.values.begin() + keep);

      double mops = MeasureStaticInsert(t.get(), subset);
      auto s = t->table()->stats().Capture();
      double lo = 1.0, hi = 0.0;
      for (int i = 0; i < t->table()->num_subtables(); ++i) {
        lo = std::min(lo, t->table()->subtable_filled_factor(i));
        hi = std::max(hi, t->table()->subtable_filled_factor(i));
      }
      PrintRow({Fmt(theta, 2), balance ? "balanced" : "random", Fmt(mops),
                std::to_string(s.evictions),
                std::to_string(s.insert_failures), Fmt(hi - lo, 3)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace dycuckoo

int main(int argc, char** argv) { return dycuckoo::bench::Main(argc, argv); }
